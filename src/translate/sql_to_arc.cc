#include "translate/sql_to_arc.h"

#include <functional>
#include <unordered_set>

#include "common/strings.h"
#include "sql/parser.h"

namespace arc::translate {

namespace {

using sql::Expr;
using sql::ExprKind;
using sql::ExprPtr;
using sql::FromItem;
using sql::FromKind;
using sql::JoinType;
using sql::SelectItem;
using sql::SelectStmt;

/// Column environment frame: maps each SQL alias of a scope to the ARC
/// range variable it became (renamed when it would shadow a collection
/// head) and its column list.
struct ScopeFrame {
  struct Entry {
    std::string sql_alias;
    std::string arc_var;
    std::vector<std::string> columns;
  };
  std::vector<Entry> aliases;
};

/// Accumulates one quantifier scope while a SELECT core is translated.
struct ScopeState {
  std::vector<Binding> bindings;
  std::vector<FormulaPtr> conjuncts;
  JoinNodePtr join_tree;
  /// Variables of general (non-single-valued) scalar subqueries; they are
  /// attached with LEFT join annotations so empty results yield NULL.
  std::vector<std::string> left_joined_vars;
};

/// What a core translation should produce.
struct CoreSpec {
  /// Collecting mode: assignments `head.name = expr` are emitted for the
  /// SELECT items. Boolean mode (existence test) when empty.
  std::string head_name;
  std::vector<std::string> out_names;  // collecting mode only
  /// IN-membership: conjoin `output = *membership_tested`; when
  /// null-checked, `(output = t ∨ output IS NULL ∨ t IS NULL)` (Eq. 17).
  const Term* membership_tested = nullptr;
  bool membership_null_checked = false;
};

class Translator {
 public:
  explicit Translator(const SqlToArcOptions& options) : options_(options) {}

  Result<Program> Run(const SelectStmt& stmt) {
    Program program;
    root_ = &stmt;
    ARC_RETURN_IF_ERROR(TranslateCtes(stmt, &program));
    ARC_ASSIGN_OR_RETURN(
        CollectionPtr main,
        TranslateSelect(stmt, options_.head_name, /*is_recursive_cte=*/false));
    program.main.collection = std::move(main);
    return program;
  }

 private:
  // ---- fresh names ------------------------------------------------------

  std::string FreshVar() { return "_v" + std::to_string(++var_counter_); }
  std::string FreshHead() { return "_S" + std::to_string(++head_counter_); }
  std::string FreshAttr() { return "_h" + std::to_string(++attr_counter_); }

  // ---- CTEs ----------------------------------------------------------------

  Status TranslateCtes(const SelectStmt& stmt, Program* program) {
    for (const sql::CommonTableExpr& cte : stmt.ctes) {
      const bool self_recursive =
          stmt.with_recursive && SelectMentions(*cte.query, cte.name);
      ARC_ASSIGN_OR_RETURN(std::vector<std::string> columns,
                           OutputNames(*cte.query));
      cte_schemas_.emplace_back(cte.name, columns);
      ARC_ASSIGN_OR_RETURN(
          CollectionPtr coll,
          TranslateSelect(*cte.query, cte.name, self_recursive));
      Definition def;
      def.kind = DefKind::kIntensional;
      def.collection = std::move(coll);
      program->definitions.push_back(std::move(def));
    }
    return Status::Ok();
  }

  static bool ExprMentions(const Expr& e, const std::string& name) {
    if (e.subquery && SelectMentions(*e.subquery, name)) return true;
    if (e.lhs && ExprMentions(*e.lhs, name)) return true;
    if (e.rhs && ExprMentions(*e.rhs, name)) return true;
    if (e.agg_arg && ExprMentions(*e.agg_arg, name)) return true;
    for (const ExprPtr& c : e.children) {
      if (ExprMentions(*c, name)) return true;
    }
    return false;
  }

  static bool FromMentions(const FromItem& f, const std::string& name) {
    switch (f.kind) {
      case FromKind::kTable:
        return EqualsIgnoreCase(f.table, name);
      case FromKind::kSubquery:
        return SelectMentions(*f.subquery, name);
      case FromKind::kJoin:
        return FromMentions(*f.left, name) || FromMentions(*f.right, name) ||
               (f.on && ExprMentions(*f.on, name));
    }
    return false;
  }

  static bool SelectMentions(const SelectStmt& s, const std::string& name) {
    for (const sql::FromItemPtr& f : s.from) {
      if (FromMentions(*f, name)) return true;
    }
    for (const SelectItem& item : s.items) {
      if (item.expr && ExprMentions(*item.expr, name)) return true;
    }
    if (s.where && ExprMentions(*s.where, name)) return true;
    if (s.having && ExprMentions(*s.having, name)) return true;
    if (s.union_next && SelectMentions(*s.union_next, name)) return true;
    return false;
  }

  // ---- output naming ---------------------------------------------------

  Result<std::vector<std::string>> OutputNames(const SelectStmt& stmt) {
    std::vector<std::string> names;
    int anon = 0;
    for (const SelectItem& item : stmt.items) {
      if (item.star) {
        return Unsupported(
            "SELECT * is not supported by the translator; list columns");
      }
      std::string name;
      if (!item.alias.empty()) {
        name = item.alias;
      } else if (item.expr->kind == ExprKind::kColumnRef) {
        name = item.expr->column;
      } else {
        name = "col" + std::to_string(++anon);
      }
      std::string candidate = name;
      int suffix = 1;
      auto taken = [&](const std::string& n) {
        for (const std::string& existing : names) {
          if (EqualsIgnoreCase(existing, n)) return true;
        }
        return false;
      };
      while (taken(candidate)) {
        candidate = name + "_" + std::to_string(++suffix);
      }
      names.push_back(std::move(candidate));
    }
    return names;
  }

  // ---- column resolution ------------------------------------------------

  Result<TermPtr> ResolveColumn(const std::string& table,
                                const std::string& column) {
    if (!table.empty()) {
      // Map the SQL alias to its (possibly renamed) ARC variable.
      for (auto scope = scopes_.rbegin(); scope != scopes_.rend(); ++scope) {
        for (const ScopeFrame::Entry& e : scope->aliases) {
          if (EqualsIgnoreCase(e.sql_alias, table)) {
            return MakeAttrRef(e.arc_var, column);
          }
        }
      }
      return MakeAttrRef(table, column);
    }
    for (auto scope = scopes_.rbegin(); scope != scopes_.rend(); ++scope) {
      const std::string* found_var = nullptr;
      for (const ScopeFrame::Entry& e : scope->aliases) {
        for (const std::string& c : e.columns) {
          if (EqualsIgnoreCase(c, column)) {
            if (found_var != nullptr) {
              return InvalidArgument("ambiguous column '" + column + "'");
            }
            found_var = &e.arc_var;
            break;
          }
        }
      }
      if (found_var != nullptr) return MakeAttrRef(*found_var, column);
    }
    return InvalidArgument(
        "cannot resolve unqualified column '" + column +
        "' (provide a database to SqlToArcOptions or qualify it)");
  }

  /// ARC variable for a FROM alias: renamed when it would shadow the head
  /// of any enclosing collection, or any visible range variable — outer
  /// references already translated into this scope (IN membership,
  /// scalar-subquery correlation) must not be captured.
  std::string ArcVarFor(const std::string& sql_alias) {
    bool shadowed = false;
    for (const std::string& head : head_stack_) {
      if (EqualsIgnoreCase(head, sql_alias)) shadowed = true;
    }
    for (const ScopeFrame& frame : scopes_) {
      for (const ScopeFrame::Entry& e : frame.aliases) {
        if (EqualsIgnoreCase(e.arc_var, sql_alias)) shadowed = true;
      }
    }
    if (shadowed) return sql_alias + "_" + std::to_string(++var_counter_);
    return sql_alias;
  }

  Result<std::vector<std::string>> TableColumns(const std::string& table) {
    for (const auto& [name, columns] : cte_schemas_) {
      if (EqualsIgnoreCase(name, table)) return columns;
    }
    if (options_.database != nullptr) {
      const data::Relation* rel = options_.database->GetPtr(table);
      if (rel != nullptr) return rel->schema().names();
    }
    return std::vector<std::string>{};
  }

  ScopeState& CurrentScope() { return *scope_states_.back(); }

  void RegisterAlias(const std::string& sql_alias, const std::string& arc_var,
                     std::vector<std::string> columns) {
    scopes_.back().aliases.push_back({sql_alias, arc_var, std::move(columns)});
  }

  // ---- FROM ---------------------------------------------------------------

  Status TranslateFromItem(const FromItem& f, JoinNodePtr* annotation) {
    switch (f.kind) {
      case FromKind::kTable: {
        Binding b;
        b.var = ArcVarFor(f.BindingName());
        b.range_kind = RangeKind::kNamed;
        b.relation = f.table;
        ARC_ASSIGN_OR_RETURN(std::vector<std::string> cols,
                             TableColumns(f.table));
        RegisterAlias(f.BindingName(), b.var, std::move(cols));
        if (annotation != nullptr) *annotation = MakeJoinVar(b.var);
        CurrentScope().bindings.push_back(std::move(b));
        return Status::Ok();
      }
      case FromKind::kSubquery: {
        ARC_ASSIGN_OR_RETURN(CollectionPtr coll,
                             TranslateSelect(*f.subquery, FreshHead(), false));
        Binding b;
        b.var = ArcVarFor(f.alias);
        b.range_kind = RangeKind::kCollection;
        RegisterAlias(f.alias, b.var, coll->head.attrs);
        b.collection = std::move(coll);
        if (annotation != nullptr) *annotation = MakeJoinVar(b.var);
        CurrentScope().bindings.push_back(std::move(b));
        return Status::Ok();
      }
      case FromKind::kJoin:
        return TranslateJoin(f, annotation);
    }
    return Internal("bad FROM item");
  }

  static void CollectLocalAliases(const Expr& e,
                                  const std::vector<std::string>& aliases,
                                  std::unordered_set<std::string>* out) {
    if (e.kind == ExprKind::kColumnRef && !e.table.empty()) {
      for (const std::string& a : aliases) {
        if (EqualsIgnoreCase(a, e.table)) {
          out->insert(ToLower(a));
          break;
        }
      }
    }
    if (e.lhs) CollectLocalAliases(*e.lhs, aliases, out);
    if (e.rhs) CollectLocalAliases(*e.rhs, aliases, out);
    if (e.agg_arg) CollectLocalAliases(*e.agg_arg, aliases, out);
    for (const ExprPtr& c : e.children) {
      CollectLocalAliases(*c, aliases, out);
    }
    if (e.subquery) CollectSubqueryAliases(*e.subquery, aliases, out);
  }

  static void CollectSubqueryAliases(const SelectStmt& s,
                                     const std::vector<std::string>& aliases,
                                     std::unordered_set<std::string>* out) {
    for (const SelectItem& item : s.items) {
      if (item.expr) CollectLocalAliases(*item.expr, aliases, out);
    }
    if (s.where) CollectLocalAliases(*s.where, aliases, out);
    if (s.having) CollectLocalAliases(*s.having, aliases, out);
    for (const ExprPtr& g : s.group_by) {
      CollectLocalAliases(*g, aliases, out);
    }
    if (s.union_next) CollectSubqueryAliases(*s.union_next, aliases, out);
  }

  static void JoinLeafAliases(const FromItem& f,
                              std::vector<std::string>* out) {
    switch (f.kind) {
      case FromKind::kTable:
      case FromKind::kSubquery:
        out->push_back(f.BindingName());
        return;
      case FromKind::kJoin:
        JoinLeafAliases(*f.left, out);
        JoinLeafAliases(*f.right, out);
        return;
    }
  }

  static void FlattenSqlAnd(ExprPtr e, std::vector<ExprPtr>* out) {
    if (e->kind == ExprKind::kAnd) {
      for (ExprPtr& c : e->children) FlattenSqlAnd(std::move(c), out);
      return;
    }
    out->push_back(std::move(e));
  }

  Status TranslateJoin(const FromItem& f, JoinNodePtr* annotation) {
    JoinNodePtr left_tree;
    JoinNodePtr right_tree;
    ARC_RETURN_IF_ERROR(TranslateFromItem(*f.left, &left_tree));
    ARC_RETURN_IF_ERROR(TranslateFromItem(*f.right, &right_tree));

    std::vector<ExprPtr> on_conjuncts;
    if (f.on) FlattenSqlAnd(f.on->Clone(), &on_conjuncts);

    const bool outer =
        f.join_type == JoinType::kLeft || f.join_type == JoinType::kFull;
    if (outer) {
      std::vector<std::string> optional_side;
      JoinLeafAliases(*f.right, &optional_side);
      std::vector<std::string> all;
      JoinLeafAliases(*f.left, &all);
      all.insert(all.end(), optional_side.begin(), optional_side.end());
      for (const ExprPtr& c : on_conjuncts) {
        std::unordered_set<std::string> used;
        CollectLocalAliases(*c, all, &used);
        bool touches_optional = false;
        for (const std::string& a : optional_side) {
          if (used.count(ToLower(a)) > 0) touches_optional = true;
        }
        if (touches_optional || used.empty()) continue;
        // Preserved-side-only condition: add a literal anchor on the
        // optional side, as in left(r, inner(11, s)) (§2.11).
        const Expr* literal_side = nullptr;
        if (c->kind == ExprKind::kCmp) {
          if (c->lhs->kind == ExprKind::kLiteral) literal_side = c->lhs.get();
          if (c->rhs->kind == ExprKind::kLiteral) literal_side = c->rhs.get();
        }
        if (literal_side == nullptr) {
          return Unsupported(
              "outer-join ON condition references only the preserved side "
              "and has no literal to anchor: " +
              sql::ToSql(*c));
        }
        std::vector<JoinNodePtr> kids;
        kids.push_back(MakeJoinLiteral(literal_side->literal));
        kids.push_back(std::move(right_tree));
        right_tree = MakeJoinInner(std::move(kids));
      }
    }

    for (const ExprPtr& c : on_conjuncts) {
      ARC_ASSIGN_OR_RETURN(FormulaPtr cond, TranslateBool(*c));
      CurrentScope().conjuncts.push_back(std::move(cond));
    }

    switch (f.join_type) {
      case JoinType::kInner:
      case JoinType::kCross: {
        std::vector<JoinNodePtr> kids;
        kids.push_back(std::move(left_tree));
        kids.push_back(std::move(right_tree));
        *annotation = MakeJoinInner(std::move(kids));
        return Status::Ok();
      }
      case JoinType::kLeft:
        *annotation = MakeJoinLeft(std::move(left_tree), std::move(right_tree));
        return Status::Ok();
      case JoinType::kFull:
        *annotation = MakeJoinFull(std::move(left_tree), std::move(right_tree));
        return Status::Ok();
    }
    return Internal("bad join type");
  }

  static bool AnnotationNeeded(const JoinNode& n) {
    switch (n.kind) {
      case JoinKind::kLeft:
      case JoinKind::kFull:
        return true;
      case JoinKind::kVarLeaf:
      case JoinKind::kLiteralLeaf:
        return false;
      case JoinKind::kInner:
        for (const JoinNodePtr& c : n.children) {
          if (AnnotationNeeded(*c)) return true;
        }
        return false;
    }
    return false;
  }

  // ---- expressions -------------------------------------------------------

  Result<TermPtr> TranslateTerm(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kColumnRef:
        return ResolveColumn(e.table, e.column);
      case ExprKind::kLiteral:
        return MakeLiteral(e.literal);
      case ExprKind::kArith: {
        ARC_ASSIGN_OR_RETURN(TermPtr l, TranslateTerm(*e.lhs));
        ARC_ASSIGN_OR_RETURN(TermPtr r, TranslateTerm(*e.rhs));
        return MakeArith(e.arith_op, std::move(l), std::move(r));
      }
      case ExprKind::kAggCall: {
        if (e.agg_func == AggFunc::kCountStar) {
          return MakeAggregate(AggFunc::kCountStar, nullptr);
        }
        ARC_ASSIGN_OR_RETURN(TermPtr arg, TranslateTerm(*e.agg_arg));
        return MakeAggregate(e.agg_func, std::move(arg));
      }
      case ExprKind::kScalarSubquery:
        return TranslateScalarSubquery(*e.subquery);
      default:
        return Unsupported("boolean expression used as a value: " +
                           sql::ToSql(e));
    }
  }

  Result<TermPtr> TranslateScalarSubquery(const SelectStmt& sub) {
    if (sub.items.size() != 1 || sub.items[0].star) {
      return Unsupported("scalar subquery must select exactly one column");
    }
    const bool single_valued = sub.group_by.empty() && !sub.having &&
                               sub.items[0].expr->ContainsAggregate() &&
                               !sub.union_next;
    ARC_ASSIGN_OR_RETURN(CollectionPtr coll,
                         TranslateSelect(sub, FreshHead(), false));
    const std::string attr = coll->head.attrs[0];
    Binding b;
    b.var = FreshVar();
    b.range_kind = RangeKind::kCollection;
    b.collection = std::move(coll);
    const std::string var = b.var;
    CurrentScope().bindings.push_back(std::move(b));
    if (!single_valued) CurrentScope().left_joined_vars.push_back(var);
    return MakeAttrRef(var, attr);
  }

  Result<FormulaPtr> TranslateBool(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kCmp: {
        ARC_ASSIGN_OR_RETURN(TermPtr l, TranslateTerm(*e.lhs));
        ARC_ASSIGN_OR_RETURN(TermPtr r, TranslateTerm(*e.rhs));
        return MakePredicate(e.cmp_op, std::move(l), std::move(r));
      }
      case ExprKind::kAnd: {
        std::vector<FormulaPtr> children;
        for (const ExprPtr& c : e.children) {
          ARC_ASSIGN_OR_RETURN(FormulaPtr f, TranslateBool(*c));
          children.push_back(std::move(f));
        }
        return MakeAnd(std::move(children));
      }
      case ExprKind::kOr: {
        std::vector<FormulaPtr> children;
        for (const ExprPtr& c : e.children) {
          ARC_ASSIGN_OR_RETURN(FormulaPtr f, TranslateBool(*c));
          children.push_back(std::move(f));
        }
        return MakeOr(std::move(children));
      }
      case ExprKind::kNot: {
        if (e.lhs->kind == ExprKind::kInSubquery) {
          return TranslateIn(*e.lhs, !e.lhs->negated);
        }
        ARC_ASSIGN_OR_RETURN(FormulaPtr inner, TranslateBool(*e.lhs));
        return MakeNot(std::move(inner));
      }
      case ExprKind::kIsNull: {
        ARC_ASSIGN_OR_RETURN(TermPtr arg, TranslateTerm(*e.lhs));
        return MakeNullTest(std::move(arg), e.negated);
      }
      case ExprKind::kExists: {
        CoreSpec spec;  // boolean mode
        ARC_ASSIGN_OR_RETURN(FormulaPtr exists,
                             TranslateUnionChain(*e.subquery, spec));
        if (e.negated) return MakeNot(std::move(exists));
        return exists;
      }
      case ExprKind::kInSubquery:
        return TranslateIn(e, e.negated);
      case ExprKind::kLiteral:
        if (e.literal.kind() == data::ValueKind::kBool) {
          if (e.literal.as_bool()) return MakeAnd({});
          return MakeOr({});
        }
        return Unsupported("literal in boolean position");
      default:
        return Unsupported("expression in boolean position: " + sql::ToSql(e));
    }
  }

  /// Eq. (17): x IN → ∃[… ∧ o = x]; x NOT IN → ¬∃[… ∧ (o = x ∨ o IS NULL ∨
  /// x IS NULL)].
  Result<FormulaPtr> TranslateIn(const Expr& e, bool negated) {
    if (e.subquery->items.size() != 1 || e.subquery->items[0].star) {
      return Unsupported("IN subquery must select exactly one column");
    }
    ARC_ASSIGN_OR_RETURN(TermPtr tested, TranslateTerm(*e.lhs));
    CoreSpec spec;  // boolean mode with membership
    spec.membership_tested = tested.get();
    spec.membership_null_checked = negated;
    ARC_ASSIGN_OR_RETURN(FormulaPtr exists,
                         TranslateUnionChain(*e.subquery, spec));
    if (negated) return MakeNot(std::move(exists));
    return exists;
  }

  // ---- SELECT core ----------------------------------------------------------

  /// Translates a (possibly UNION-chained) select under `spec`; returns an
  /// Exists formula or an Or of Exists formulas.
  Result<FormulaPtr> TranslateUnionChain(const SelectStmt& stmt,
                                         const CoreSpec& spec) {
    std::vector<FormulaPtr> branches;
    const SelectStmt* current = &stmt;
    while (current != nullptr) {
      if (!current->ctes.empty() && current != root_) {
        return Unsupported("CTEs are only supported on the outermost query");
      }
      ARC_ASSIGN_OR_RETURN(FormulaPtr branch, BuildCore(*current, spec));
      branches.push_back(std::move(branch));
      current = current->union_next.get();
    }
    if (branches.size() == 1) return std::move(branches[0]);
    return MakeOr(std::move(branches));
  }

  /// Translates one SELECT core into a quantifier scope.
  Result<FormulaPtr> BuildCore(const SelectStmt& stmt, const CoreSpec& spec) {
    const bool collecting = !spec.head_name.empty();
    scopes_.emplace_back();
    ScopeState state;
    scope_states_.push_back(&state);
    if (collecting) head_stack_.push_back(spec.head_name);

    auto result = BuildCoreInner(stmt, spec, collecting);

    if (collecting) head_stack_.pop_back();
    scope_states_.pop_back();
    scopes_.pop_back();
    return result;
  }

  Result<FormulaPtr> BuildCoreInner(const SelectStmt& stmt,
                                    const CoreSpec& spec, bool collecting) {
    if (!stmt.order_by.empty()) {
      return Unsupported(
          "ORDER BY is presentation-level and outside the relational core "
          "(sorted lists are the paper's §5 open extension); strip it "
          "before translating");
    }
    ScopeState& state = CurrentScope();

    // FROM.
    std::vector<JoinNodePtr> trees;
    for (const sql::FromItemPtr& f : stmt.from) {
      JoinNodePtr tree;
      ARC_RETURN_IF_ERROR(TranslateFromItem(*f, &tree));
      trees.push_back(std::move(tree));
    }
    bool need_annotation = false;
    for (const JoinNodePtr& t : trees) {
      if (t && AnnotationNeeded(*t)) need_annotation = true;
    }
    if (need_annotation) {
      state.join_tree = trees.size() == 1 ? std::move(trees[0])
                                          : MakeJoinInner(std::move(trees));
    }

    // WHERE.
    if (stmt.where) {
      ARC_ASSIGN_OR_RETURN(FormulaPtr where, TranslateBool(*stmt.where));
      state.conjuncts.push_back(std::move(where));
    }

    // Grouping decision.
    bool has_select_agg = false;
    for (const SelectItem& item : stmt.items) {
      if (item.expr && item.expr->ContainsAggregate()) has_select_agg = true;
    }
    const bool grouped =
        !stmt.group_by.empty() || has_select_agg || stmt.having != nullptr;

    std::optional<Grouping> grouping;
    if (grouped) {
      Grouping g;
      for (const ExprPtr& key : stmt.group_by) {
        ARC_ASSIGN_OR_RETURN(TermPtr k, TranslateTerm(*key));
        g.keys.push_back(std::move(k));
      }
      grouping = std::move(g);
    }

    // HAVING (collecting mode uses the nested pattern of Fig. 6; boolean
    // mode inlines the aggregates as group filters).
    if (stmt.having != nullptr && collecting) {
      return BuildHavingNested(stmt, spec, std::move(grouping));
    }
    if (stmt.having != nullptr) {
      ARC_ASSIGN_OR_RETURN(FormulaPtr having, TranslateBool(*stmt.having));
      state.conjuncts.push_back(std::move(having));
    }

    // Membership conjunct (IN).
    if (spec.membership_tested != nullptr) {
      if (stmt.items.size() != 1 || stmt.items[0].star || !stmt.items[0].expr) {
        return Unsupported("IN subquery must select exactly one column");
      }
      ARC_ASSIGN_OR_RETURN(TermPtr output, TranslateTerm(*stmt.items[0].expr));
      if (spec.membership_null_checked) {
        std::vector<FormulaPtr> disjuncts;
        disjuncts.push_back(MakePredicate(data::CmpOp::kEq, output->Clone(),
                                          spec.membership_tested->Clone()));
        disjuncts.push_back(MakeNullTest(std::move(output), false));
        disjuncts.push_back(
            MakeNullTest(spec.membership_tested->Clone(), false));
        state.conjuncts.push_back(MakeOr(std::move(disjuncts)));
      } else {
        state.conjuncts.push_back(MakePredicate(
            data::CmpOp::kEq, std::move(output),
            spec.membership_tested->Clone()));
      }
    }

    // SELECT assignments (collecting mode).
    if (collecting) {
      if (stmt.items.size() != spec.out_names.size()) {
        return Internal("output-name arity mismatch");
      }
      for (size_t i = 0; i < stmt.items.size(); ++i) {
        ARC_ASSIGN_OR_RETURN(TermPtr value,
                             TranslateTerm(*stmt.items[i].expr));
        state.conjuncts.push_back(MakePredicate(
            data::CmpOp::kEq,
            MakeAttrRef(spec.head_name, spec.out_names[i]), std::move(value)));
      }
    }

    return AssembleScope(std::move(grouping));
  }

  /// Builds the Exists formula from the accumulated scope state.
  Result<FormulaPtr> AssembleScope(std::optional<Grouping> grouping) {
    ScopeState& state = CurrentScope();
    if (state.bindings.empty()) {
      // FROM-less select (e.g. SELECT 1 WHERE …): model as a singleton via
      // an empty conjunction body — ARC has no zero-binding scopes, so wrap
      // the conjuncts directly (the caller's spine handles them).
      if (state.conjuncts.empty()) return MakeAnd({});
      return MakeAnd(std::move(state.conjuncts));
    }
    // Attach LEFT joins for general scalar subqueries.
    if (!state.left_joined_vars.empty()) {
      auto is_left_var = [&](const std::string& var) {
        for (const std::string& v : state.left_joined_vars) {
          if (EqualsIgnoreCase(v, var)) return true;
        }
        return false;
      };
      JoinNodePtr base = std::move(state.join_tree);
      // Regular leaves not yet covered by the tree.
      std::vector<std::string> covered;
      if (base) base->CollectVars(&covered);
      std::vector<JoinNodePtr> extra;
      for (const Binding& b : state.bindings) {
        if (is_left_var(b.var)) continue;
        bool in_tree = false;
        for (const std::string& v : covered) {
          if (EqualsIgnoreCase(v, b.var)) in_tree = true;
        }
        if (!in_tree) extra.push_back(MakeJoinVar(b.var));
      }
      if (base && !extra.empty()) {
        std::vector<JoinNodePtr> kids;
        kids.push_back(std::move(base));
        for (JoinNodePtr& e : extra) kids.push_back(std::move(e));
        base = MakeJoinInner(std::move(kids));
      } else if (!base) {
        if (extra.size() == 1) {
          base = std::move(extra[0]);
        } else {
          base = MakeJoinInner(std::move(extra));
        }
      }
      for (const std::string& v : state.left_joined_vars) {
        base = MakeJoinLeft(std::move(base), MakeJoinVar(v));
      }
      state.join_tree = std::move(base);
    }

    auto q = std::make_unique<Quantifier>();
    q->bindings = std::move(state.bindings);
    q->grouping = std::move(grouping);
    q->join_tree = std::move(state.join_tree);
    if (state.conjuncts.size() == 1) {
      q->body = std::move(state.conjuncts[0]);
    } else {
      q->body = MakeAnd(std::move(state.conjuncts));
    }
    return MakeExists(std::move(q));
  }

  // ---- HAVING (nested pattern, Fig. 6) ------------------------------------

  Result<FormulaPtr> BuildHavingNested(const SelectStmt& stmt,
                                       const CoreSpec& spec,
                                       std::optional<Grouping> grouping) {
    ScopeState& state = CurrentScope();
    const std::string inner_head = FreshHead();
    std::vector<std::string> inner_attrs = spec.out_names;
    std::vector<FormulaPtr> inner_assignments;

    // SELECT outputs become inner head attrs.
    for (size_t i = 0; i < stmt.items.size(); ++i) {
      ARC_ASSIGN_OR_RETURN(TermPtr value, TranslateTerm(*stmt.items[i].expr));
      inner_assignments.push_back(
          MakePredicate(data::CmpOp::kEq,
                        MakeAttrRef(inner_head, spec.out_names[i]),
                        std::move(value)));
    }

    // Hoist HAVING aggregates / column refs into extra inner attrs.
    const std::string outer_var = FreshVar();
    std::vector<std::pair<std::string, std::string>> hoisted;  // sql → attr
    auto hoist = [&](const Expr& e) -> Result<TermPtr> {
      const std::string key = sql::ToSql(e);
      // Reuse a select item when the expression coincides.
      for (size_t i = 0; i < stmt.items.size(); ++i) {
        if (sql::ToSql(*stmt.items[i].expr) == key) {
          return MakeAttrRef(outer_var, spec.out_names[i]);
        }
      }
      for (const auto& [k, attr] : hoisted) {
        if (k == key) return MakeAttrRef(outer_var, attr);
      }
      const std::string attr = FreshAttr();
      ARC_ASSIGN_OR_RETURN(TermPtr value, TranslateTerm(e));
      inner_attrs.push_back(attr);
      inner_assignments.push_back(MakePredicate(
          data::CmpOp::kEq, MakeAttrRef(inner_head, attr), std::move(value)));
      hoisted.emplace_back(key, attr);
      return MakeAttrRef(outer_var, attr);
    };
    std::function<Result<TermPtr>(const Expr&)> having_term =
        [&](const Expr& e) -> Result<TermPtr> {
      switch (e.kind) {
        case ExprKind::kAggCall:
        case ExprKind::kColumnRef:
          return hoist(e);
        case ExprKind::kLiteral:
          return MakeLiteral(e.literal);
        case ExprKind::kArith: {
          ARC_ASSIGN_OR_RETURN(TermPtr l, having_term(*e.lhs));
          ARC_ASSIGN_OR_RETURN(TermPtr r, having_term(*e.rhs));
          return MakeArith(e.arith_op, std::move(l), std::move(r));
        }
        default:
          return Unsupported("unsupported term in HAVING: " + sql::ToSql(e));
      }
    };
    std::function<Result<FormulaPtr>(const Expr&)> having_bool =
        [&](const Expr& e) -> Result<FormulaPtr> {
      switch (e.kind) {
        case ExprKind::kCmp: {
          ARC_ASSIGN_OR_RETURN(TermPtr l, having_term(*e.lhs));
          ARC_ASSIGN_OR_RETURN(TermPtr r, having_term(*e.rhs));
          return MakePredicate(e.cmp_op, std::move(l), std::move(r));
        }
        case ExprKind::kAnd: {
          std::vector<FormulaPtr> children;
          for (const ExprPtr& c : e.children) {
            ARC_ASSIGN_OR_RETURN(FormulaPtr f, having_bool(*c));
            children.push_back(std::move(f));
          }
          return MakeAnd(std::move(children));
        }
        case ExprKind::kOr: {
          std::vector<FormulaPtr> children;
          for (const ExprPtr& c : e.children) {
            ARC_ASSIGN_OR_RETURN(FormulaPtr f, having_bool(*c));
            children.push_back(std::move(f));
          }
          return MakeOr(std::move(children));
        }
        case ExprKind::kNot: {
          ARC_ASSIGN_OR_RETURN(FormulaPtr inner, having_bool(*e.lhs));
          return MakeNot(std::move(inner));
        }
        case ExprKind::kIsNull: {
          ARC_ASSIGN_OR_RETURN(TermPtr arg, having_term(*e.lhs));
          return MakeNullTest(std::move(arg), e.negated);
        }
        default:
          return Unsupported("unsupported HAVING condition: " + sql::ToSql(e));
      }
    };
    ARC_ASSIGN_OR_RETURN(FormulaPtr having_cond, having_bool(*stmt.having));

    // Assemble the inner grouped collection.
    for (FormulaPtr& a : inner_assignments) {
      state.conjuncts.push_back(std::move(a));
    }
    ARC_ASSIGN_OR_RETURN(FormulaPtr inner_exists,
                         AssembleScope(std::move(grouping)));
    Head head;
    head.relation = inner_head;
    head.attrs = inner_attrs;
    CollectionPtr inner =
        MakeCollection(std::move(head), std::move(inner_exists));

    // Outer scope: bind x over the inner collection, re-emit outputs, and
    // apply the HAVING condition.
    auto q = std::make_unique<Quantifier>();
    Binding b;
    b.var = outer_var;
    b.range_kind = RangeKind::kCollection;
    b.collection = std::move(inner);
    q->bindings.push_back(std::move(b));
    std::vector<FormulaPtr> outer_conjuncts;
    for (size_t i = 0; i < spec.out_names.size(); ++i) {
      outer_conjuncts.push_back(MakePredicate(
          data::CmpOp::kEq, MakeAttrRef(spec.head_name, spec.out_names[i]),
          MakeAttrRef(outer_var, spec.out_names[i])));
    }
    outer_conjuncts.push_back(std::move(having_cond));
    q->body = MakeAnd(std::move(outer_conjuncts));
    return MakeExists(std::move(q));
  }

  // ---- top-level select → collection ---------------------------------------

  Result<CollectionPtr> TranslateSelect(const SelectStmt& stmt,
                                        const std::string& head_name,
                                        bool is_recursive_cte) {
    ARC_ASSIGN_OR_RETURN(std::vector<std::string> out_names,
                         OutputNames(stmt));
    // Arity check across UNION branches.
    for (const SelectStmt* cur = stmt.union_next.get(); cur != nullptr;
         cur = cur->union_next.get()) {
      if (cur->items.size() != out_names.size()) {
        return InvalidArgument("UNION branches have different arities");
      }
    }
    bool any_union_distinct = false;
    for (const SelectStmt* cur = &stmt; cur->union_next != nullptr;
         cur = cur->union_next.get()) {
      if (!cur->union_all) any_union_distinct = true;
    }

    // DISTINCT / UNION-distinct: deduplicate via grouping over all outputs
    // (§2.7). Recursion deduplicates inherently (least fixpoint), so skip.
    const bool need_dedup =
        (stmt.distinct || any_union_distinct) && !is_recursive_cte;
    const std::string inner_name = need_dedup ? FreshHead() : head_name;

    CoreSpec spec;
    spec.head_name = inner_name;
    spec.out_names = out_names;
    ARC_ASSIGN_OR_RETURN(FormulaPtr body, TranslateUnionChain(stmt, spec));
    Head head;
    head.relation = inner_name;
    head.attrs = out_names;
    CollectionPtr coll = MakeCollection(std::move(head), std::move(body));

    if (need_dedup) {
      const std::string var = FreshVar();
      auto q = std::make_unique<Quantifier>();
      Binding b;
      b.var = var;
      b.range_kind = RangeKind::kCollection;
      b.collection = std::move(coll);
      q->bindings.push_back(std::move(b));
      Grouping g;
      for (const std::string& attr : out_names) {
        g.keys.push_back(MakeAttrRef(var, attr));
      }
      q->grouping = std::move(g);
      std::vector<FormulaPtr> conjuncts;
      for (const std::string& attr : out_names) {
        conjuncts.push_back(MakePredicate(data::CmpOp::kEq,
                                          MakeAttrRef(head_name, attr),
                                          MakeAttrRef(var, attr)));
      }
      Head outer_head;
      outer_head.relation = head_name;
      outer_head.attrs = out_names;
      q->body = MakeAnd(std::move(conjuncts));
      return MakeCollection(std::move(outer_head), MakeExists(std::move(q)));
    }
    return coll;
  }

  const SqlToArcOptions& options_;
  std::vector<std::pair<std::string, std::vector<std::string>>> cte_schemas_;
  std::vector<ScopeFrame> scopes_;
  std::vector<ScopeState*> scope_states_;
  const SelectStmt* root_ = nullptr;
  std::vector<std::string> head_stack_;
  int var_counter_ = 0;
  int head_counter_ = 0;
  int attr_counter_ = 0;
};

}  // namespace

Result<Program> SqlToArc(const sql::SelectStmt& stmt,
                         const SqlToArcOptions& options) {
  return Translator(options).Run(stmt);
}

Result<Program> SqlToArc(std::string_view sql_text,
                         const SqlToArcOptions& options) {
  ARC_ASSIGN_OR_RETURN(sql::SelectPtr stmt, sql::ParseSelect(sql_text));
  return SqlToArc(*stmt, options);
}

}  // namespace arc::translate
