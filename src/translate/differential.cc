#include "translate/differential.h"

#include <utility>

#include "data/value.h"
#include "eval/evaluator.h"
#include "sql/eval.h"
#include "translate/arc_to_sql.h"
#include "verify/bounded_eq.h"

namespace arc::translate {

namespace {

using data::Relation;
using data::Tuple;
using data::Value;

struct Mutant {
  std::string name;
  data::Database db;
};

Value Bumped(const Value& v) {
  switch (v.kind()) {
    case data::ValueKind::kInt:
      return Value::Int(v.as_int() + 1);
    case data::ValueKind::kDouble:
      return Value::Double(v.as_double() + 1.0);
    case data::ValueKind::kString:
      return Value::String(v.as_string() + "x");
    default:
      return v;
  }
}

data::Database WithRelation(const data::Database& db, const std::string& name,
                            std::vector<Tuple> rows) {
  data::Database out = db;
  out.Put(name, Relation(db.GetPtr(name)->schema(), std::move(rows)));
  return out;
}

/// The mutation menu. Deliberately decoupled from the warnings' internals:
/// every mutant is tried for every dimension, in deterministic order, and
/// the first divergence wins. Targets:
///   * duplication mutants  — expose set-vs-bag sensitivity,
///   * a "dup + bumped copy" mutant — exposes avg (invariant under uniform
///     duplication: avg{v,v} = avg{v}, but avg{v,v,w} ≠ avg{v,w}),
///   * NULL injections      — expose 3VL-vs-2VL sensitivity,
///   * emptied relations    — expose empty-aggregate initialization.
std::vector<Mutant> BuildMutants(const data::Database& db) {
  std::vector<Mutant> out;
  out.push_back({"identity", db});
  for (const std::string& name : db.Names()) {
    const Relation* rel = db.GetPtr(name);
    const std::vector<Tuple>& rows = rel->rows();
    const int width = rel->schema().size();
    if (!rows.empty()) {
      {
        std::vector<Tuple> dup = rows;
        dup.push_back(rows.front());
        out.push_back({"dup-row(" + name + ")", WithRelation(db, name, dup)});
      }
      {
        std::vector<Tuple> dup = rows;
        dup.insert(dup.end(), rows.begin(), rows.end());
        out.push_back({"dup-all(" + name + ")", WithRelation(db, name, dup)});
      }
      {
        // Eightfold duplication pushes bag-side counts past any small
        // aggregate threshold (count(*) >= k for k <= 8) that a doubled
        // group would still miss.
        std::vector<Tuple> dup;
        dup.reserve(rows.size() * 8);
        for (int i = 0; i < 8; ++i) {
          dup.insert(dup.end(), rows.begin(), rows.end());
        }
        out.push_back({"dup-x8(" + name + ")", WithRelation(db, name, dup)});
      }
      {
        // A single surviving row makes group sizes minimal, so threshold
        // flips sit right at the set/bag boundary.
        std::vector<Tuple> one{rows.front()};
        out.push_back(
            {"truncate(" + name + ")", WithRelation(db, name, std::move(one))});
      }
      {
        std::vector<Tuple> dup = rows;
        dup.push_back(rows.front());
        Tuple bumped = rows.front();
        for (int c = 0; c < bumped.size(); ++c) {
          bumped.at(c) = Bumped(bumped.at(c));
        }
        dup.push_back(std::move(bumped));
        out.push_back({"dup-bump(" + name + ")", WithRelation(db, name, dup)});
      }
      // NULL a single cell, row by row: whether a null reaches the
      // sensitive comparison depends on which joins the row survives, so
      // every row is probed. Instances are test-sized; the menu stays
      // a few hundred entries at most.
      for (size_t i = 0; i < rows.size(); ++i) {
        for (int c = 0; c < width; ++c) {
          std::vector<Tuple> cell = rows;
          cell[i].at(c) = Value();
          out.push_back({"null-cell(" + name + "." + rel->schema().name(c) +
                             "#" + std::to_string(i) + ")",
                         WithRelation(db, name, std::move(cell))});
        }
      }
      for (int c = 0; c < width; ++c) {
        std::vector<Tuple> col = rows;
        for (Tuple& t : col) t.at(c) = Value();
        out.push_back(
            {"null-column(" + name + "." + rel->schema().name(c) + ")",
             WithRelation(db, name, std::move(col))});
      }
    }
    out.push_back({"empty(" + name + ")", WithRelation(db, name, {})});
  }
  if (db.relation_count() > 1) {
    data::Database all_empty = db;
    for (const std::string& name : db.Names()) {
      all_empty.Put(name, Relation(db.GetPtr(name)->schema()));
    }
    out.push_back({"empty-all", std::move(all_empty)});
  }
  return out;
}

/// Evaluates `program` (collection or sentence) under `conv`. Sentences are
/// encoded as a 0/1-row unary relation — the same encoding the SQL renderer
/// uses — so both program kinds compare uniformly.
Result<Relation> EvalUnder(const data::Database& db, const Program& program,
                           const Conventions& conv) {
  eval::EvalOptions opts;
  opts.conventions = conv;
  if (program.main.is_sentence()) {
    eval::Evaluator evaluator(db, opts);
    auto truth = evaluator.EvalSentence(program);
    if (!truth.ok()) return truth.status();
    Relation out(data::Schema{"v"});
    if (data::IsTrue(*truth)) out.Add({Value::Bool(true)});
    return out;
  }
  return eval::Eval(db, program, opts);
}

/// ARC under SQL conventions vs. the independent SQL engine on the rendered
/// SQL, over `db`. False on translation failure or disagreement.
bool SqlCrossCheck(const Program& program, const data::Database& db) {
  if (program.main.is_sentence()) return false;  // no SQL encoding used here
  auto sql_text = ArcToSqlText(program);
  if (!sql_text.ok()) return false;
  sql::SqlEvaluator sql_eval(db);
  auto sql_result = sql_eval.EvalQuery(*sql_text);
  if (!sql_result.ok()) return false;
  auto arc_result = EvalUnder(db, program, Conventions::Sql());
  if (!arc_result.ok()) return false;
  return arc_result->EqualsBag(*sql_result);
}

}  // namespace

Conventions FlipConvention(const Conventions& base, ConventionDimension d) {
  Conventions varied = base;
  switch (d) {
    case ConventionDimension::kMultiplicity:
      varied.multiplicity =
          base.multiplicity == Conventions::Multiplicity::kSet
              ? Conventions::Multiplicity::kBag
              : Conventions::Multiplicity::kSet;
      break;
    case ConventionDimension::kNullLogic:
      varied.null_logic = base.null_logic == data::NullLogic::kThreeValued
                              ? data::NullLogic::kTwoValued
                              : data::NullLogic::kThreeValued;
      break;
    case ConventionDimension::kEmptyAggregate:
      varied.empty_aggregate =
          base.empty_aggregate == Conventions::EmptyAggregate::kNull
              ? Conventions::EmptyAggregate::kNeutral
              : Conventions::EmptyAggregate::kNull;
      break;
  }
  return varied;
}

std::optional<DivergenceWitness> ExhibitDivergence(
    const Program& program, const data::Database& db,
    ConventionDimension dimension, bool* observed_output) {
  const Conventions base = Conventions::Arc();
  const Conventions varied = FlipConvention(base, dimension);
  if (observed_output != nullptr) *observed_output = false;
  for (Mutant& m : BuildMutants(db)) {
    auto base_result = EvalUnder(m.db, program, base);
    if (!base_result.ok()) continue;
    if (observed_output != nullptr && !base_result->empty()) {
      *observed_output = true;
    }
    auto varied_result = EvalUnder(m.db, program, varied);
    if (!varied_result.ok()) continue;
    if (observed_output != nullptr && !varied_result->empty()) {
      *observed_output = true;
    }
    if (base_result->EqualsBag(*varied_result)) continue;
    DivergenceWitness w;
    w.dimension = dimension;
    w.mutation = std::move(m.name);
    w.base = base;
    w.varied = varied;
    w.base_result = *std::move(base_result);
    w.varied_result = *std::move(varied_result);
    w.sql_cross_checked = SqlCrossCheck(program, m.db);
    w.instance = std::move(m.db);
    return w;
  }
  return std::nullopt;
}

std::optional<DivergenceWitness> ExhibitDivergenceBounded(
    const Program& program, const data::Database& db,
    ConventionDimension dimension, const BoundedWitnessOptions& opts) {
  const Conventions base = Conventions::Arc();
  const Conventions varied = FlipConvention(base, dimension);

  std::vector<verify::RelationSig> schema;
  for (const std::string& name : db.Names()) {
    schema.push_back({name, db.GetPtr(name)->schema().names()});
  }
  if (schema.empty()) return std::nullopt;

  verify::BoundedEqOptions eopts;
  eopts.domain_size = opts.domain_size;
  eopts.max_rows = opts.max_rows;
  eopts.include_null = opts.include_null;
  eopts.domain = verify::BuildValuePool(program, program, eopts);
  // Self-comparison under two conventions: renaming symmetry is sound
  // under exactly the per-program equivariance conditions, with program
  // literals and producible count outputs held rigid.
  const bool symmetric = verify::RenamingEquivariant(program);
  const std::vector<data::Value> rigid =
      verify::RigidValues(program, program, schema, eopts);

  std::optional<DivergenceWitness> found;
  int64_t instance_no = 0;
  verify::ForEachInstance(
      schema, eopts, symmetric, rigid,
      [&](const data::Database& instance, int64_t total_rows) {
        ++instance_no;
        auto base_result = EvalUnder(instance, program, base);
        if (!base_result.ok()) return false;
        auto varied_result = EvalUnder(instance, program, varied);
        if (!varied_result.ok()) return false;
        if (base_result->EqualsBag(*varied_result)) return false;
        DivergenceWitness w;
        w.dimension = dimension;
        w.mutation = "bounded(k=" + std::to_string(eopts.domain.size()) +
                     ", rows<=" + std::to_string(eopts.max_rows) + ", " +
                     std::to_string(total_rows) + " total rows, instance #" +
                     std::to_string(instance_no) + ")";
        w.base = base;
        w.varied = varied;
        w.base_result = *std::move(base_result);
        w.varied_result = *std::move(varied_result);
        w.sql_cross_checked = SqlCrossCheck(program, instance);
        w.instance = instance;
        found = std::move(w);
        return true;
      });
  return found;
}

std::string DivergenceWitness::ToString() const {
  std::string out = std::string(ConventionDimensionName(dimension)) +
                    " divergence on " + mutation + ": " +
                    base.ToString() + " -> " + base_result.ToString() +
                    " vs. " + varied.ToString() + " -> " +
                    varied_result.ToString();
  if (sql_cross_checked) out += " (SQL engine agrees)";
  return out;
}

bool LintValidationReport::AllConfirmed() const {
  for (const Entry& e : entries) {
    if (!e.witness.has_value() && !e.vacuous) return false;
  }
  return true;
}

std::string LintValidationReport::ToString() const {
  std::string out;
  for (const Entry& e : entries) {
    out += std::string(ConventionDimensionName(e.dimension)) + ": " +
           std::to_string(e.warnings) + " warning(s), ";
    out += e.witness.has_value()
               ? "confirmed — " + e.witness->ToString()
               : (e.vacuous ? "vacuous (no output on any probed instance)"
                            : "UNCONFIRMED");
    out += "\n";
  }
  return out;
}

LintValidationReport ValidateConventionWarnings(const Program& program,
                                                const data::Database& db,
                                                const LintResult& lint) {
  LintValidationReport report;
  for (const Diagnostic& d : lint.findings) {
    const LintPass* pass = FindLintPass(d.code);
    if (pass == nullptr || !pass->dimension.has_value()) continue;
    LintValidationReport::Entry* entry = nullptr;
    for (LintValidationReport::Entry& e : report.entries) {
      if (e.dimension == *pass->dimension) entry = &e;
    }
    if (entry == nullptr) {
      report.entries.push_back({*pass->dimension, 0, std::nullopt});
      entry = &report.entries.back();
    }
    ++entry->warnings;
  }
  for (LintValidationReport::Entry& e : report.entries) {
    bool observed = false;
    e.witness = ExhibitDivergence(program, db, e.dimension, &observed);
    e.vacuous = !e.witness.has_value() && !observed;
  }
  return report;
}

}  // namespace arc::translate
