#include "translate/arc_to_sql.h"

#include <unordered_map>
#include <unordered_set>

#include "arc/external.h"
#include "common/strings.h"

namespace arc::translate {

namespace {

using sql::ExprPtr;
using sql::FromItemPtr;
using sql::SelectItem;
using sql::SelectPtr;
using sql::SelectStmt;

void FlattenAnd(const Formula& f, std::vector<const Formula*>* out) {
  if (f.kind == FormulaKind::kAnd) {
    for (const FormulaPtr& c : f.children) FlattenAnd(*c, out);
    return;
  }
  out->push_back(&f);
}

/// Does the formula reference `var` (descending into nested collections,
/// respecting head shadowing)? Mirrors the evaluator's rule.
bool FormulaRefs(const Formula& f, std::string_view var);

bool TermRefs(const Term& t, std::string_view var) { return t.References(var); }

bool CollectionRefs(const Collection& c, std::string_view var) {
  if (EqualsIgnoreCase(c.head.relation, var)) return false;
  return c.body && FormulaRefs(*c.body, var);
}

bool FormulaRefs(const Formula& f, std::string_view var) {
  switch (f.kind) {
    case FormulaKind::kAnd:
    case FormulaKind::kOr:
      for (const FormulaPtr& c : f.children) {
        if (FormulaRefs(*c, var)) return true;
      }
      return false;
    case FormulaKind::kNot:
      return f.child && FormulaRefs(*f.child, var);
    case FormulaKind::kExists: {
      const Quantifier& q = *f.quantifier;
      for (const Binding& b : q.bindings) {
        if (b.range_kind == RangeKind::kCollection && b.collection &&
            CollectionRefs(*b.collection, var)) {
          return true;
        }
        if (EqualsIgnoreCase(b.var, var)) return false;  // shadowed below
      }
      if (q.grouping.has_value()) {
        for (const TermPtr& k : q.grouping->keys) {
          if (TermRefs(*k, var)) return true;
        }
      }
      return q.body && FormulaRefs(*q.body, var);
    }
    case FormulaKind::kPredicate:
      return (f.lhs && TermRefs(*f.lhs, var)) || (f.rhs && TermRefs(*f.rhs, var));
    case FormulaKind::kNullTest:
      return f.null_arg && TermRefs(*f.null_arg, var);
  }
  return false;
}

bool FormulaHasRangeRef(const Formula& f, std::string_view name);

bool CollectionHasRangeRef(const Collection& c, std::string_view name) {
  if (EqualsIgnoreCase(c.head.relation, name)) return false;
  return c.body && FormulaHasRangeRef(*c.body, name);
}

bool FormulaHasRangeRef(const Formula& f, std::string_view name) {
  switch (f.kind) {
    case FormulaKind::kAnd:
    case FormulaKind::kOr:
      for (const FormulaPtr& c : f.children) {
        if (FormulaHasRangeRef(*c, name)) return true;
      }
      return false;
    case FormulaKind::kNot:
      return f.child && FormulaHasRangeRef(*f.child, name);
    case FormulaKind::kExists:
      for (const Binding& b : f.quantifier->bindings) {
        if (b.range_kind == RangeKind::kNamed &&
            EqualsIgnoreCase(b.relation, name)) {
          return true;
        }
        if (b.range_kind == RangeKind::kCollection && b.collection &&
            CollectionHasRangeRef(*b.collection, name)) {
          return true;
        }
      }
      return f.quantifier->body &&
             FormulaHasRangeRef(*f.quantifier->body, name);
    default:
      return false;
  }
}

/// Substitutes head-/variable-attribute references by terms (used when
/// inlining abstract-relation modules).
class TermSubstitution {
 public:
  void Add(const std::string& var, const std::string& attr, const Term& value) {
    entries_.push_back({ToLower(var), ToLower(attr), &value});
  }

  const Term* Find(const Term& t) const {
    if (t.kind != TermKind::kAttrRef) return nullptr;
    for (const Entry& e : entries_) {
      if (ToLower(t.var) == e.var && ToLower(t.attr) == e.attr) {
        return e.value;
      }
    }
    return nullptr;
  }

  bool HasVar(const std::string& var) const {
    for (const Entry& e : entries_) {
      if (e.var == ToLower(var)) return true;
    }
    return false;
  }

  bool HasAny() const { return !entries_.empty(); }

 private:
  struct Entry {
    std::string var;
    std::string attr;
    const Term* value;
  };
  std::vector<Entry> entries_;
};

class Renderer {
 public:
  explicit Renderer(const ArcToSqlOptions& options) : options_(options) {}

  Result<SelectPtr> Run(const Program& program) {
    ARC_RETURN_IF_ERROR(CollectDefinitions(program));
    if (!program.main.collection) {
      return InvalidArgument("program has no main collection");
    }
    ARC_ASSIGN_OR_RETURN(SelectPtr stmt,
                         RenderCollection(*program.main.collection));
    AttachCtes(stmt.get());
    return stmt;
  }

  Result<SelectPtr> RunSentence(const Program& program) {
    ARC_RETURN_IF_ERROR(CollectDefinitions(program));
    if (!program.main.sentence) {
      return InvalidArgument("program has no sentence");
    }
    auto stmt = std::make_unique<SelectStmt>();
    SelectItem item;
    item.expr = sql::MakeSqlLiteral(data::Value::Bool(true));
    item.alias = "v";
    stmt->items.push_back(std::move(item));
    ARC_ASSIGN_OR_RETURN(ExprPtr cond,
                         RenderBool(*program.main.sentence, nullptr));
    stmt->where = std::move(cond);
    AttachCtes(stmt.get());
    return stmt;
  }

 private:
  Status CollectDefinitions(const Program& program) {
    for (const Definition& def : program.definitions) {
      if (!def.collection) return InvalidArgument("empty definition");
      if (def.kind == DefKind::kAbstract) {
        abstract_defs_[ToLower(def.collection->head.relation)] =
            def.collection.get();
        continue;
      }
      ARC_ASSIGN_OR_RETURN(SelectPtr rendered,
                           RenderCollection(*def.collection));
      sql::CommonTableExpr cte;
      cte.name = def.collection->head.relation;
      if (CollectionHasRangeRef(*def.collection,
                                def.collection->head.relation) ||
          (def.collection->body &&
           FormulaHasRangeRef(*def.collection->body,
                              def.collection->head.relation))) {
        any_recursive_ = true;
      }
      // Rendering a recursive collection yields a WITH RECURSIVE wrapper
      // whose main select is a trivial pass-through; hoist the inner CTE
      // directly rather than adding a same-named shadowing wrapper.
      if (rendered->ctes.size() == 1 &&
          EqualsIgnoreCase(rendered->ctes[0].name, cte.name)) {
        if (rendered->with_recursive) any_recursive_ = true;
        ctes_.push_back(std::move(rendered->ctes[0]));
        continue;
      }
      if (!rendered->ctes.empty()) {
        for (sql::CommonTableExpr& inner : rendered->ctes) {
          ctes_.push_back(std::move(inner));
        }
        rendered->ctes.clear();
        if (rendered->with_recursive) any_recursive_ = true;
        rendered->with_recursive = false;
      }
      cte.query = std::move(rendered);
      ctes_.push_back(std::move(cte));
    }
    return Status::Ok();
  }

  void AttachCtes(SelectStmt* stmt) {
    if (ctes_.empty()) return;
    // Merge: the main statement may itself carry CTEs (recursion).
    std::vector<sql::CommonTableExpr> merged = std::move(ctes_);
    for (sql::CommonTableExpr& own : stmt->ctes) {
      merged.push_back(std::move(own));
    }
    stmt->ctes = std::move(merged);
    stmt->with_recursive = stmt->with_recursive || any_recursive_;
  }

  // ---- collections ---------------------------------------------------------

  Result<SelectPtr> RenderCollection(const Collection& c) {
    if (c.body && FormulaHasRangeRef(*c.body, c.head.relation)) {
      return RenderRecursive(c);
    }
    return RenderBody(*c.body, c.head);
  }

  Result<SelectPtr> RenderRecursive(const Collection& c) {
    // WITH RECURSIVE name AS (<branches UNION>) SELECT attrs FROM name.
    ARC_ASSIGN_OR_RETURN(SelectPtr inner, RenderBody(*c.body, c.head));
    auto outer = std::make_unique<SelectStmt>();
    outer->with_recursive = true;
    sql::CommonTableExpr cte;
    cte.name = c.head.relation;
    // Recursive CTE semantics are UNION (set): force non-ALL links.
    for (SelectStmt* s = inner.get(); s != nullptr; s = s->union_next.get()) {
      if (s->union_next) s->union_all = false;
    }
    cte.query = std::move(inner);
    outer->ctes.push_back(std::move(cte));
    for (const std::string& attr : c.head.attrs) {
      SelectItem item;
      item.expr = sql::MakeColumnRef(c.head.relation, attr);
      item.alias = attr;
      outer->items.push_back(std::move(item));
    }
    outer->from.push_back(sql::MakeFromTable(c.head.relation, ""));
    return outer;
  }

  Result<SelectPtr> RenderBody(const Formula& body, const Head& head) {
    if (body.kind == FormulaKind::kOr) {
      // UNION chain.
      SelectPtr first;
      SelectStmt* tail = nullptr;
      for (const FormulaPtr& branch : body.children) {
        ARC_ASSIGN_OR_RETURN(SelectPtr stmt, RenderBody(*branch, head));
        if (!first) {
          first = std::move(stmt);
          tail = first.get();
        } else {
          tail->union_all = !options_.emulate_set_semantics;
          tail->union_next = std::move(stmt);
          tail = tail->union_next.get();
        }
      }
      return first;
    }
    if (body.kind == FormulaKind::kExists) {
      return RenderScope(*body.quantifier, &head);
    }
    // Degenerate FROM-less collection: conjunctive body of assignments and
    // conditions.
    std::vector<const Formula*> conjuncts;
    FlattenAnd(body, &conjuncts);
    auto stmt = std::make_unique<SelectStmt>();
    stmt->distinct = options_.emulate_set_semantics;
    TermSubstitution no_subst;
    ARC_RETURN_IF_ERROR(
        EmitSelectAndConditions(conjuncts, head, no_subst, stmt.get()));
    return stmt;
  }

  /// Emits SELECT items from assignments and WHERE/HAVING conditions from
  /// the remaining conjuncts.
  Status EmitSelectAndConditions(const std::vector<const Formula*>& conjuncts,
                                 const Head& head,
                                 const TermSubstitution& subst,
                                 SelectStmt* stmt,
                                 const std::unordered_set<const Formula*>*
                                     consumed = nullptr) {
    std::vector<ExprPtr> where;
    std::vector<ExprPtr> having;
    std::vector<std::pair<std::string, SelectItem>> pending_items;
    for (const Formula* c : conjuncts) {
      if (consumed != nullptr && consumed->count(c) > 0) continue;
      auto assign = MatchAssignment(*c, head.relation);
      if (assign.has_value()) {
        SelectItem item;
        ARC_ASSIGN_OR_RETURN(item.expr, RenderTerm(*assign->second, subst));
        item.alias = assign->first;
        // Keep head order: collect then reorder below.
        pending_items.emplace_back(ToLower(assign->first), std::move(item));
        continue;
      }
      ARC_ASSIGN_OR_RETURN(ExprPtr cond, RenderBool(*c, &subst));
      if (c->ContainsAggregate()) {
        having.push_back(std::move(cond));
      } else {
        where.push_back(std::move(cond));
      }
    }
    for (const std::string& attr : head.attrs) {
      bool found = false;
      for (auto& [name, item] : pending_items) {
        if (name == ToLower(attr)) {
          stmt->items.push_back(std::move(item));
          found = true;
          break;
        }
      }
      if (!found) {
        return Unsupported("no assignment for head attribute '" + attr +
                           "' at this scope (disjunctive assignments inside "
                           "a scope are not renderable)");
      }
    }
    if (!where.empty()) {
      stmt->where = where.size() == 1 ? std::move(where[0])
                                      : sql::MakeSqlAnd(std::move(where));
    }
    if (!having.empty()) {
      stmt->having = having.size() == 1 ? std::move(having[0])
                                        : sql::MakeSqlAnd(std::move(having));
    }
    return Status::Ok();
  }

  static std::optional<std::pair<std::string, const Term*>> MatchAssignment(
      const Formula& f, const std::string& head_name) {
    if (f.kind != FormulaKind::kPredicate || f.cmp_op != data::CmpOp::kEq) {
      return std::nullopt;
    }
    auto head_ref = [&](const TermPtr& t) {
      return t && t->kind == TermKind::kAttrRef &&
             EqualsIgnoreCase(t->var, head_name);
    };
    const bool l = head_ref(f.lhs);
    const bool r = head_ref(f.rhs);
    if (l == r) return std::nullopt;
    const Term* value = l ? f.rhs.get() : f.lhs.get();
    if (value == nullptr || value->References(head_name)) return std::nullopt;
    return std::make_pair(l ? f.lhs->attr : f.rhs->attr, value);
  }

  // ---- scopes -----------------------------------------------------------

  /// Renders a quantifier scope. With a head: a full SELECT; without
  /// (boolean mode): SELECT 1 … for EXISTS.
  Result<SelectPtr> RenderScope(const Quantifier& q, const Head* head) {
    auto stmt = std::make_unique<SelectStmt>();
    std::vector<const Formula*> conjuncts;
    if (q.body) FlattenAnd(*q.body, &conjuncts);

    // Inline abstract-relation bindings first: they turn into conditions.
    TermSubstitution subst;
    std::vector<const Binding*> regular;
    std::vector<ExprPtr> inlined_conditions;
    std::unordered_set<const Formula*> consumed;
    for (const Binding& b : q.bindings) {
      const Collection* module = nullptr;
      if (b.range_kind == RangeKind::kNamed) {
        auto it = abstract_defs_.find(ToLower(b.relation));
        if (it != abstract_defs_.end()) module = it->second;
      }
      if (module == nullptr) {
        regular.push_back(&b);
        continue;
      }
      ARC_RETURN_IF_ERROR(InlineAbstract(b, *module, conjuncts, &subst,
                                         &inlined_conditions, &consumed));
    }

    // FROM.
    if (q.join_tree) {
      ARC_RETURN_IF_ERROR(
          RenderJoinTree(q, *q.join_tree, regular, conjuncts, &consumed,
                         subst, stmt.get()));
    } else {
      for (const Binding* b : regular) {
        ARC_ASSIGN_OR_RETURN(FromItemPtr item, RenderBinding(*b));
        stmt->from.push_back(std::move(item));
      }
    }

    // GROUP BY.
    if (q.grouping.has_value()) {
      for (const TermPtr& k : q.grouping->keys) {
        ARC_ASSIGN_OR_RETURN(ExprPtr key, RenderTerm(*k, subst));
        stmt->group_by.push_back(std::move(key));
      }
    }

    if (head != nullptr) {
      stmt->distinct = options_.emulate_set_semantics;
      ARC_RETURN_IF_ERROR(
          EmitSelectAndConditions(conjuncts, *head, subst, stmt.get(),
                                  &consumed));
    } else {
      // Boolean mode: SELECT 1.
      SelectItem item;
      item.expr = sql::MakeSqlLiteral(data::Value::Int(1));
      stmt->items.push_back(std::move(item));
      std::vector<ExprPtr> where;
      std::vector<ExprPtr> having;
      for (const Formula* c : conjuncts) {
        if (consumed.count(c) > 0) continue;
        ARC_ASSIGN_OR_RETURN(ExprPtr cond, RenderBool(*c, &subst));
        if (c->ContainsAggregate()) {
          having.push_back(std::move(cond));
        } else {
          where.push_back(std::move(cond));
        }
      }
      if (!where.empty()) {
        stmt->where = where.size() == 1 ? std::move(where[0])
                                        : sql::MakeSqlAnd(std::move(where));
      }
      if (!having.empty()) {
        stmt->having = having.size() == 1
                           ? std::move(having[0])
                           : sql::MakeSqlAnd(std::move(having));
      }
    }

    // Conditions produced by abstract-module inlining.
    for (ExprPtr& cond : inlined_conditions) {
      if (stmt->where) {
        std::vector<ExprPtr> both;
        both.push_back(std::move(stmt->where));
        both.push_back(std::move(cond));
        stmt->where = sql::MakeSqlAnd(std::move(both));
      } else {
        stmt->where = std::move(cond);
      }
    }
    return stmt;
  }

  Result<FromItemPtr> RenderBinding(const Binding& b) {
    if (b.range_kind == RangeKind::kCollection) {
      ARC_ASSIGN_OR_RETURN(SelectPtr sub, RenderCollection(*b.collection));
      if (!sub->ctes.empty()) {
        return Unsupported("recursive collection nested in a binding");
      }
      return sql::MakeFromSubquery(std::move(sub), b.var, /*lateral=*/true);
    }
    if (externals_.Find(b.relation) != nullptr && !IsDefined(b.relation)) {
      return Unsupported("external relation '" + b.relation +
                         "' cannot be rendered to SQL; use inline arithmetic");
    }
    return sql::MakeFromTable(b.relation, b.var);
  }

  bool IsDefined(const std::string& name) const {
    for (const sql::CommonTableExpr& cte : ctes_) {
      if (EqualsIgnoreCase(cte.name, name)) return true;
    }
    return false;
  }

  // ---- abstract-module inlining -------------------------------------------

  Status InlineAbstract(const Binding& b, const Collection& module,
                        const std::vector<const Formula*>& conjuncts,
                        TermSubstitution* subst,
                        std::vector<ExprPtr>* conditions,
                        std::unordered_set<const Formula*>* consumed) {
    // Find parameter equalities var.attr = term.
    for (const std::string& attr : module.head.attrs) {
      const Term* param = nullptr;
      for (const Formula* c : conjuncts) {
        if (c->kind != FormulaKind::kPredicate ||
            c->cmp_op != data::CmpOp::kEq) {
          continue;
        }
        auto side = [&](const TermPtr& ref, const TermPtr& val) -> const Term* {
          if (!ref || ref->kind != TermKind::kAttrRef) return nullptr;
          if (!EqualsIgnoreCase(ref->var, b.var)) return nullptr;
          if (!EqualsIgnoreCase(ref->attr, attr)) return nullptr;
          if (val && val->References(b.var)) return nullptr;
          return val.get();
        };
        const Term* v = side(c->lhs, c->rhs);
        if (v == nullptr) v = side(c->rhs, c->lhs);
        if (v != nullptr) {
          param = v;
          consumed->insert(c);
          break;
        }
      }
      if (param == nullptr) {
        return Unsupported("abstract relation '" + module.head.relation +
                           "': attribute '" + attr +
                           "' is not bound by an equality");
      }
      subst->Add(b.var, attr, *param);
      subst->Add(module.head.relation, attr, *param);
    }
    // Render the module body as a condition under the substitution.
    ARC_ASSIGN_OR_RETURN(ExprPtr cond, RenderBool(*module.body, subst));
    conditions->push_back(std::move(cond));
    return Status::Ok();
  }

  // ---- join annotation rendering -------------------------------------------

  struct LeafSets {
    std::unordered_set<std::string> vars;
    std::unordered_set<const JoinNode*> lits;
  };

  static void NodeLeaves(const JoinNode& n, LeafSets* out) {
    if (n.kind == JoinKind::kVarLeaf) {
      out->vars.insert(ToLower(n.var));
      return;
    }
    if (n.kind == JoinKind::kLiteralLeaf) {
      out->lits.insert(&n);
      return;
    }
    for (const JoinNodePtr& c : n.children) NodeLeaves(*c, out);
  }

  static const JoinNode* FindLowestCovering(const JoinNode& n,
                                            const LeafSets& needed) {
    LeafSets here;
    NodeLeaves(n, &here);
    for (const std::string& v : needed.vars) {
      if (here.vars.count(v) == 0) return nullptr;
    }
    for (const JoinNode* l : needed.lits) {
      if (here.lits.count(l) == 0) return nullptr;
    }
    for (const JoinNodePtr& c : n.children) {
      const JoinNode* deeper = FindLowestCovering(*c, needed);
      if (deeper != nullptr) return deeper;
    }
    return &n;
  }

  Status RenderJoinTree(const Quantifier& q, const JoinNode& root,
                        const std::vector<const Binding*>& regular,
                        const std::vector<const Formula*>& conjuncts,
                        std::unordered_set<const Formula*>* consumed,
                        const TermSubstitution& subst, SelectStmt* stmt) {
    // Attach join-condition conjuncts to nodes by the lowest-covering rule.
    LeafSets all;
    NodeLeaves(root, &all);
    std::unordered_map<const JoinNode*, std::vector<const Formula*>> conds;
    const std::string head_guess = "";  // assignments excluded below anyway
    (void)head_guess;
    for (const Formula* c : conjuncts) {
      if (c->ContainsAggregate()) continue;
      // Skip assignments for any plausible head: conservatively, conjuncts
      // referencing variables not bound in this scope stay in WHERE.
      LeafSets needed;
      for (const std::string& v : all.vars) {
        if (FormulaRefs(*c, v)) needed.vars.insert(v);
      }
      if (c->kind == FormulaKind::kPredicate) {
        auto match_literal = [&](const TermPtr& t) {
          if (!t || t->kind != TermKind::kLiteral) return;
          for (const JoinNode* lit : all.lits) {
            if (lit->literal.Equals(t->literal)) {
              needed.lits.insert(lit);
              return;
            }
          }
        };
        match_literal(c->lhs);
        match_literal(c->rhs);
      }
      if (needed.vars.empty() && needed.lits.empty()) continue;  // WHERE
      // Conjuncts that also reference a head (assignments) stay out.
      bool refs_only_scope = true;
      // (Assignments are filtered by EmitSelectAndConditions; here we only
      // consume pure join conditions.)
      if (IsAssignmentShaped(*c, q)) refs_only_scope = false;
      if (!refs_only_scope) continue;
      const JoinNode* node = FindLowestCovering(root, needed);
      if (node == nullptr || node->kind == JoinKind::kVarLeaf ||
          node->kind == JoinKind::kLiteralLeaf) {
        continue;  // plain single-table filter → WHERE
      }
      conds[node].push_back(c);
      consumed->insert(c);
    }
    ARC_ASSIGN_OR_RETURN(FromItemPtr item,
                         RenderJoinNode(q, root, conds, subst));
    stmt->from.push_back(std::move(item));
    // Bindings not mentioned in the tree join as comma items.
    LeafSets tree_leaves;
    NodeLeaves(root, &tree_leaves);
    for (const Binding* b : regular) {
      if (tree_leaves.vars.count(ToLower(b->var)) == 0) {
        ARC_ASSIGN_OR_RETURN(FromItemPtr extra, RenderBinding(*b));
        stmt->from.push_back(std::move(extra));
      }
    }
    return Status::Ok();
  }

  /// Heuristic: an equality with a bare attr-ref side whose variable is not
  /// bound in this scope looks like an assignment (head or outer ref) and
  /// must not be consumed as a join condition.
  static bool IsAssignmentShaped(const Formula& f, const Quantifier& q) {
    if (f.kind != FormulaKind::kPredicate || f.cmp_op != data::CmpOp::kEq) {
      return false;
    }
    auto unbound_bare_ref = [&](const TermPtr& t) {
      if (!t || t->kind != TermKind::kAttrRef) return false;
      for (const Binding& b : q.bindings) {
        if (EqualsIgnoreCase(b.var, t->var)) return false;
      }
      return true;
    };
    return unbound_bare_ref(f.lhs) || unbound_bare_ref(f.rhs);
  }

  Result<FromItemPtr> RenderJoinNode(
      const Quantifier& q, const JoinNode& n,
      const std::unordered_map<const JoinNode*, std::vector<const Formula*>>&
          conds,
      const TermSubstitution& subst) {
    auto node_cond = [&](const JoinNode& node) -> Result<ExprPtr> {
      auto it = conds.find(&node);
      if (it == conds.end()) {
        return sql::MakeSqlLiteral(data::Value::Bool(true));
      }
      std::vector<ExprPtr> parts;
      for (const Formula* c : it->second) {
        ARC_ASSIGN_OR_RETURN(ExprPtr e, RenderBool(*c, &subst));
        parts.push_back(std::move(e));
      }
      if (parts.size() == 1) return std::move(parts[0]);
      return sql::MakeSqlAnd(std::move(parts));
    };
    switch (n.kind) {
      case JoinKind::kVarLeaf: {
        for (const Binding& b : q.bindings) {
          if (EqualsIgnoreCase(b.var, n.var)) return RenderBinding(b);
        }
        return Unsupported("join annotation references unbound '" + n.var +
                           "'");
      }
      case JoinKind::kLiteralLeaf: {
        // One-row FROM-less subquery carrying the literal.
        auto sub = std::make_unique<SelectStmt>();
        SelectItem item;
        item.expr = sql::MakeSqlLiteral(n.literal);
        item.alias = "v";
        sub->items.push_back(std::move(item));
        return sql::MakeFromSubquery(std::move(sub),
                                     "_lit" + std::to_string(++lit_counter_),
                                     /*lateral=*/false);
      }
      case JoinKind::kInner: {
        ARC_ASSIGN_OR_RETURN(FromItemPtr acc,
                             RenderJoinNode(q, *n.children[0], conds, subst));
        for (size_t i = 1; i < n.children.size(); ++i) {
          ARC_ASSIGN_OR_RETURN(
              FromItemPtr next, RenderJoinNode(q, *n.children[i], conds, subst));
          ExprPtr on = sql::MakeSqlLiteral(data::Value::Bool(true));
          if (i + 1 == n.children.size()) {
            ARC_ASSIGN_OR_RETURN(on, node_cond(n));
          }
          acc = sql::MakeFromJoin(sql::JoinType::kInner, std::move(acc),
                                  std::move(next), std::move(on));
        }
        if (n.children.size() == 1) {
          // Unary inner: apply conditions via a JOIN with a dummy? Fold the
          // condition into WHERE by leaving it unconsumed is cleaner, but we
          // already consumed it; attach with a cross self-join is wrong. Use
          // the condition as an ON against a one-row subquery.
          auto it = conds.find(&n);
          if (it != conds.end()) {
            auto one = std::make_unique<SelectStmt>();
            SelectItem item;
            item.expr = sql::MakeSqlLiteral(data::Value::Int(1));
            item.alias = "v";
            one->items.push_back(std::move(item));
            ARC_ASSIGN_OR_RETURN(ExprPtr on, node_cond(n));
            acc = sql::MakeFromJoin(
                sql::JoinType::kInner, std::move(acc),
                sql::MakeFromSubquery(std::move(one),
                                      "_one" + std::to_string(++lit_counter_),
                                      false),
                std::move(on));
          }
        }
        return acc;
      }
      case JoinKind::kLeft:
      case JoinKind::kFull: {
        ARC_ASSIGN_OR_RETURN(FromItemPtr left,
                             RenderJoinNode(q, *n.children[0], conds, subst));
        ARC_ASSIGN_OR_RETURN(FromItemPtr right,
                             RenderJoinNode(q, *n.children[1], conds, subst));
        ARC_ASSIGN_OR_RETURN(ExprPtr on, node_cond(n));
        return sql::MakeFromJoin(n.kind == JoinKind::kLeft
                                     ? sql::JoinType::kLeft
                                     : sql::JoinType::kFull,
                                 std::move(left), std::move(right),
                                 std::move(on));
      }
    }
    return Internal("bad join node");
  }

  // ---- terms and formulas ----------------------------------------------

  Result<ExprPtr> RenderTerm(const Term& t, const TermSubstitution& subst) {
    if (const Term* replacement = subst.Find(t)) {
      // Substituted parameters were rendered in the outer context; rendering
      // them again here is safe because they only contain outer references.
      return RenderTerm(*replacement, TermSubstitution());
    }
    switch (t.kind) {
      case TermKind::kAttrRef:
        return sql::MakeColumnRef(t.var, t.attr);
      case TermKind::kLiteral:
        return sql::MakeSqlLiteral(t.literal);
      case TermKind::kArith: {
        ARC_ASSIGN_OR_RETURN(ExprPtr l, RenderTerm(*t.lhs, subst));
        ARC_ASSIGN_OR_RETURN(ExprPtr r, RenderTerm(*t.rhs, subst));
        return sql::MakeSqlArith(t.arith_op, std::move(l), std::move(r));
      }
      case TermKind::kAggregate: {
        if (t.agg_func == AggFunc::kCountStar) {
          return sql::MakeSqlAgg(AggFunc::kCountStar, nullptr);
        }
        ARC_ASSIGN_OR_RETURN(ExprPtr arg, RenderTerm(*t.agg_arg, subst));
        return sql::MakeSqlAgg(t.agg_func, std::move(arg));
      }
    }
    return Internal("bad term");
  }

  Result<ExprPtr> RenderBool(const Formula& f, const TermSubstitution* subst) {
    static const TermSubstitution kEmpty;
    const TermSubstitution& s = subst != nullptr ? *subst : kEmpty;
    switch (f.kind) {
      case FormulaKind::kPredicate: {
        ARC_ASSIGN_OR_RETURN(ExprPtr l, RenderTerm(*f.lhs, s));
        ARC_ASSIGN_OR_RETURN(ExprPtr r, RenderTerm(*f.rhs, s));
        return sql::MakeSqlCmp(f.cmp_op, std::move(l), std::move(r));
      }
      case FormulaKind::kNullTest: {
        ARC_ASSIGN_OR_RETURN(ExprPtr arg, RenderTerm(*f.null_arg, s));
        return sql::MakeSqlIsNull(std::move(arg), f.null_negated);
      }
      case FormulaKind::kAnd: {
        if (f.children.empty()) {
          return sql::MakeSqlLiteral(data::Value::Bool(true));
        }
        std::vector<ExprPtr> children;
        for (const FormulaPtr& c : f.children) {
          ARC_ASSIGN_OR_RETURN(ExprPtr e, RenderBool(*c, subst));
          children.push_back(std::move(e));
        }
        if (children.size() == 1) return std::move(children[0]);
        return sql::MakeSqlAnd(std::move(children));
      }
      case FormulaKind::kOr: {
        if (f.children.empty()) {
          return sql::MakeSqlLiteral(data::Value::Bool(false));
        }
        std::vector<ExprPtr> children;
        for (const FormulaPtr& c : f.children) {
          ARC_ASSIGN_OR_RETURN(ExprPtr e, RenderBool(*c, subst));
          children.push_back(std::move(e));
        }
        if (children.size() == 1) return std::move(children[0]);
        return sql::MakeSqlOr(std::move(children));
      }
      case FormulaKind::kNot: {
        if (f.child->kind == FormulaKind::kExists) {
          ARC_ASSIGN_OR_RETURN(ExprPtr exists, RenderBool(*f.child, subst));
          exists->negated = true;
          return exists;
        }
        ARC_ASSIGN_OR_RETURN(ExprPtr inner, RenderBool(*f.child, subst));
        return sql::MakeSqlNot(std::move(inner));
      }
      case FormulaKind::kExists: {
        ARC_ASSIGN_OR_RETURN(SelectPtr sub,
                             RenderScopeWithSubst(*f.quantifier, s));
        return sql::MakeSqlExists(std::move(sub), /*negated=*/false);
      }
    }
    return Internal("bad formula");
  }

  /// Boolean-mode scope rendering under an active substitution (abstract
  /// module bodies).
  Result<SelectPtr> RenderScopeWithSubst(const Quantifier& q,
                                         const TermSubstitution& subst) {
    if (!subst.HasAny()) return RenderScope(q, nullptr);
    // Rebuild the scope manually, applying the substitution to predicates.
    auto stmt = std::make_unique<SelectStmt>();
    SelectItem item;
    item.expr = sql::MakeSqlLiteral(data::Value::Int(1));
    stmt->items.push_back(std::move(item));
    for (const Binding& b : q.bindings) {
      ARC_ASSIGN_OR_RETURN(FromItemPtr f, RenderBinding(b));
      stmt->from.push_back(std::move(f));
    }
    if (q.grouping.has_value()) {
      for (const TermPtr& k : q.grouping->keys) {
        ARC_ASSIGN_OR_RETURN(ExprPtr key, RenderTerm(*k, subst));
        stmt->group_by.push_back(std::move(key));
      }
    }
    if (q.join_tree) {
      return Unsupported("join annotations inside abstract modules");
    }
    std::vector<const Formula*> conjuncts;
    if (q.body) FlattenAnd(*q.body, &conjuncts);
    std::vector<ExprPtr> where;
    std::vector<ExprPtr> having;
    for (const Formula* c : conjuncts) {
      ARC_ASSIGN_OR_RETURN(ExprPtr cond, RenderBool(*c, &subst));
      if (c->ContainsAggregate()) {
        having.push_back(std::move(cond));
      } else {
        where.push_back(std::move(cond));
      }
    }
    if (!where.empty()) {
      stmt->where = where.size() == 1 ? std::move(where[0])
                                      : sql::MakeSqlAnd(std::move(where));
    }
    if (!having.empty()) {
      stmt->having = having.size() == 1 ? std::move(having[0])
                                        : sql::MakeSqlAnd(std::move(having));
    }
    return stmt;
  }

  const ArcToSqlOptions& options_;
  ExternalRegistry externals_ = ExternalRegistry::Builtins();
  std::unordered_map<std::string, const Collection*> abstract_defs_;
  std::vector<sql::CommonTableExpr> ctes_;
  bool any_recursive_ = false;
  int lit_counter_ = 0;
};

}  // namespace

Result<SelectPtr> ArcToSql(const Program& program,
                           const ArcToSqlOptions& options) {
  return Renderer(options).Run(program);
}

Result<SelectPtr> ArcSentenceToSql(const Program& program,
                                   const ArcToSqlOptions& options) {
  return Renderer(options).RunSentence(program);
}

Result<std::string> ArcToSqlText(const Program& program,
                                 const ArcToSqlOptions& options) {
  if (program.main.sentence) {
    ARC_ASSIGN_OR_RETURN(SelectPtr stmt, ArcSentenceToSql(program, options));
    return sql::ToSql(*stmt);
  }
  ARC_ASSIGN_OR_RETURN(SelectPtr stmt, ArcToSql(program, options));
  return sql::ToSql(*stmt);
}

}  // namespace arc::translate
