#include "translate/datalog_to_arc.h"

#include <functional>
#include <unordered_map>
#include <unordered_set>

#include "common/strings.h"

namespace arc::translate {

namespace {

using datalog::Aggregate;
using datalog::Atom;
using datalog::Declaration;
using datalog::DlProgram;
using datalog::DlTerm;
using datalog::DlTermKind;
using datalog::Literal;
using datalog::LiteralKind;
using datalog::Rule;

class DlTranslator {
 public:
  explicit DlTranslator(const DlProgram& program) : program_(program) {}

  Result<Program> Run(std::string_view query_predicate) {
    ARC_RETURN_IF_ERROR(CollectPredicates());
    ARC_ASSIGN_OR_RETURN(std::vector<std::string> order,
                         TopologicalOrder());
    Program out;
    const std::string query_key = ToLower(std::string(query_predicate));
    CollectionPtr main;
    for (const std::string& key : order) {
      ARC_ASSIGN_OR_RETURN(CollectionPtr coll, TranslatePredicate(key));
      if (key == query_key) {
        main = std::move(coll);
      } else {
        Definition def;
        def.kind = DefKind::kIntensional;
        def.collection = std::move(coll);
        out.definitions.push_back(std::move(def));
      }
    }
    if (!main) {
      return NotFound("predicate '" + std::string(query_predicate) +
                      "' has no rules or facts");
    }
    out.main.collection = std::move(main);
    return out;
  }

 private:
  struct PredInfo {
    std::string display;
    std::vector<std::string> attrs;
    std::vector<const Rule*> rules;
    std::vector<const Atom*> facts;
  };

  Status CollectPredicates() {
    auto ensure = [&](const std::string& name, size_t arity) -> PredInfo& {
      const std::string key = ToLower(name);
      auto [it, inserted] = preds_.try_emplace(key);
      if (inserted) {
        it->second.display = name;
        if (const Declaration* d = program_.FindDecl(name)) {
          it->second.attrs = d->attrs;
        } else {
          for (size_t i = 0; i < arity; ++i) {
            it->second.attrs.push_back("$" + std::to_string(i + 1));
          }
        }
      }
      return it->second;
    };
    for (const Rule& r : program_.rules) {
      ensure(r.head.predicate, r.head.args.size()).rules.push_back(&r);
    }
    for (const Atom& f : program_.facts) {
      ensure(f.predicate, f.args.size()).facts.push_back(&f);
    }
    return Status::Ok();
  }

  bool IsIdb(const std::string& key) const { return preds_.count(key) > 0; }

  /// Dependency-ordered IDB predicates; mutual recursion is rejected,
  /// self-recursion allowed.
  Result<std::vector<std::string>> TopologicalOrder() {
    std::vector<std::string> order;
    std::unordered_set<std::string> done;
    std::unordered_set<std::string> visiting;
    std::function<Status(const std::string&)> visit =
        [&](const std::string& key) -> Status {
      if (done.count(key) > 0) return Status::Ok();
      if (visiting.count(key) > 0) {
        return Unsupported(
            "mutually recursive predicates are not supported by the "
            "Datalog→ARC translator (predicate '" +
            preds_.at(key).display + "')");
      }
      visiting.insert(key);
      for (const Rule* r : preds_.at(key).rules) {
        for (const Literal& l : r->body) {
          auto dep = [&](const Atom& a) -> Status {
            const std::string dep_key = ToLower(a.predicate);
            if (dep_key == key) return Status::Ok();  // self-recursion OK
            if (IsIdb(dep_key)) return visit(dep_key);
            return Status::Ok();
          };
          if (l.kind == LiteralKind::kAtom ||
              l.kind == LiteralKind::kNegatedAtom) {
            ARC_RETURN_IF_ERROR(dep(l.atom));
          }
          if (l.kind == LiteralKind::kAggregate) {
            for (const Atom& a : l.aggregate.body_atoms) {
              ARC_RETURN_IF_ERROR(dep(a));
            }
          }
        }
      }
      visiting.erase(key);
      done.insert(key);
      order.push_back(key);
      return Status::Ok();
    };
    for (const auto& [key, info] : preds_) {
      (void)info;
      ARC_RETURN_IF_ERROR(visit(key));
    }
    return order;
  }

  /// Attribute names of a predicate (IDB info, or EDB positional names
  /// matching the evaluator's scheme).
  Result<std::vector<std::string>> AttrsOf(const Atom& atom) {
    const std::string key = ToLower(atom.predicate);
    auto it = preds_.find(key);
    if (it != preds_.end()) {
      if (it->second.attrs.size() != atom.args.size()) {
        return InvalidArgument("arity mismatch for '" + atom.predicate + "'");
      }
      return it->second.attrs;
    }
    if (const Declaration* d = program_.FindDecl(atom.predicate)) {
      return d->attrs;
    }
    // EDB without declaration: positional attribute names are unknowable
    // here; require a declaration.
    return InvalidArgument("EDB predicate '" + atom.predicate +
                           "' needs a .decl to translate (attribute names)");
  }

  Result<CollectionPtr> TranslatePredicate(const std::string& key) {
    const PredInfo& info = preds_.at(key);
    std::vector<FormulaPtr> branches;
    for (const Rule* r : info.rules) {
      ARC_ASSIGN_OR_RETURN(FormulaPtr branch, TranslateRule(*r, info));
      branches.push_back(std::move(branch));
    }
    for (const Atom* f : info.facts) {
      std::vector<FormulaPtr> assigns;
      for (size_t i = 0; i < f->args.size(); ++i) {
        assigns.push_back(MakePredicate(
            data::CmpOp::kEq, MakeAttrRef(info.display, info.attrs[i]),
            MakeLiteral(f->args[i]->value)));
      }
      branches.push_back(MakeAnd(std::move(assigns)));
    }
    Head head;
    head.relation = info.display;
    head.attrs = info.attrs;
    FormulaPtr body = branches.size() == 1 ? std::move(branches[0])
                                           : MakeOr(std::move(branches));
    return MakeCollection(std::move(head), std::move(body));
  }

  // ---- rule translation -------------------------------------------------

  struct RuleCtx {
    /// Datalog variable → representative ARC term.
    std::vector<std::pair<std::string, TermPtr>> reprs;
    std::vector<FormulaPtr> conjuncts;
    int var_counter = 0;

    const Term* FindRepr(const std::string& var) const {
      for (const auto& [name, term] : reprs) {
        if (name == var) return term.get();
      }
      return nullptr;
    }
    void AddRepr(const std::string& var, TermPtr term) {
      reprs.emplace_back(var, std::move(term));
    }
    std::string FreshVar(const std::string& base) {
      return base + std::to_string(++var_counter);
    }
  };

  Result<FormulaPtr> TranslateRule(const Rule& r, const PredInfo& head_info) {
    RuleCtx ctx;
    auto q = std::make_unique<Quantifier>();

    // Pass 1: positive atoms establish bindings and variable reprs.
    for (const Literal& l : r.body) {
      if (l.kind != LiteralKind::kAtom) continue;
      ARC_RETURN_IF_ERROR(AddAtomBinding(l.atom, &ctx, q.get()));
    }
    // Pass 2: grounding equalities (x = expr) establish reprs for the rest.
    bool progress = true;
    std::unordered_set<const Literal*> grounded;
    while (progress) {
      progress = false;
      for (const Literal& l : r.body) {
        if (l.kind != LiteralKind::kComparison || grounded.count(&l) > 0) {
          continue;
        }
        if (l.cmp != data::CmpOp::kEq) continue;
        if (l.lhs->kind != DlTermKind::kVar) continue;
        if (ctx.FindRepr(l.lhs->var) != nullptr) continue;
        auto value = TranslateDlTerm(*l.rhs, ctx);
        if (!value.ok()) continue;  // not yet groundable
        ctx.AddRepr(l.lhs->var, std::move(value).value());
        grounded.insert(&l);
        progress = true;
      }
    }
    // Pass 3: aggregates (FOI nested collections).
    for (const Literal& l : r.body) {
      if (l.kind != LiteralKind::kAggregate) continue;
      ARC_RETURN_IF_ERROR(TranslateAggregate(l.aggregate, &ctx, q.get()));
    }
    // Pass 4: remaining comparisons and negated atoms.
    for (const Literal& l : r.body) {
      switch (l.kind) {
        case LiteralKind::kComparison: {
          if (grounded.count(&l) > 0) break;
          ARC_ASSIGN_OR_RETURN(TermPtr lhs, TranslateDlTerm(*l.lhs, ctx));
          ARC_ASSIGN_OR_RETURN(TermPtr rhs, TranslateDlTerm(*l.rhs, ctx));
          ctx.conjuncts.push_back(
              MakePredicate(l.cmp, std::move(lhs), std::move(rhs)));
          break;
        }
        case LiteralKind::kNegatedAtom: {
          ARC_ASSIGN_OR_RETURN(FormulaPtr neg,
                               TranslateNegatedAtom(l.atom, &ctx));
          ctx.conjuncts.push_back(std::move(neg));
          break;
        }
        default:
          break;
      }
    }
    // Head assignments.
    for (size_t i = 0; i < r.head.args.size(); ++i) {
      ARC_ASSIGN_OR_RETURN(TermPtr value,
                           TranslateDlTerm(*r.head.args[i], ctx));
      ctx.conjuncts.push_back(MakePredicate(
          data::CmpOp::kEq,
          MakeAttrRef(head_info.display, head_info.attrs[i]),
          std::move(value)));
    }

    if (q->bindings.empty()) {
      // Body with no positive atoms: a pure condition branch.
      return MakeAnd(std::move(ctx.conjuncts));
    }
    q->body = ctx.conjuncts.size() == 1 ? std::move(ctx.conjuncts[0])
                                        : MakeAnd(std::move(ctx.conjuncts));
    return MakeExists(std::move(q));
  }

  Status AddAtomBinding(const Atom& atom, RuleCtx* ctx, Quantifier* q) {
    ARC_ASSIGN_OR_RETURN(std::vector<std::string> attrs, AttrsOf(atom));
    Binding b;
    b.var = ctx->FreshVar("t");
    b.range_kind = RangeKind::kNamed;
    b.relation = atom.predicate;
    const std::string var = b.var;
    q->bindings.push_back(std::move(b));
    for (size_t i = 0; i < atom.args.size(); ++i) {
      const DlTerm& arg = *atom.args[i];
      switch (arg.kind) {
        case DlTermKind::kUnderscore:
          break;
        case DlTermKind::kVar: {
          const Term* repr = ctx->FindRepr(arg.var);
          if (repr == nullptr) {
            ctx->AddRepr(arg.var, MakeAttrRef(var, attrs[i]));
          } else {
            ctx->conjuncts.push_back(MakePredicate(
                data::CmpOp::kEq, MakeAttrRef(var, attrs[i]), repr->Clone()));
          }
          break;
        }
        case DlTermKind::kConst:
          ctx->conjuncts.push_back(MakePredicate(data::CmpOp::kEq,
                                                 MakeAttrRef(var, attrs[i]),
                                                 MakeLiteral(arg.value)));
          break;
        case DlTermKind::kArith: {
          ARC_ASSIGN_OR_RETURN(TermPtr value, TranslateDlTerm(arg, *ctx));
          ctx->conjuncts.push_back(MakePredicate(
              data::CmpOp::kEq, MakeAttrRef(var, attrs[i]), std::move(value)));
          break;
        }
      }
    }
    return Status::Ok();
  }

  Result<FormulaPtr> TranslateNegatedAtom(const Atom& atom, RuleCtx* ctx) {
    ARC_ASSIGN_OR_RETURN(std::vector<std::string> attrs, AttrsOf(atom));
    auto q = std::make_unique<Quantifier>();
    Binding b;
    b.var = ctx->FreshVar("n");
    b.range_kind = RangeKind::kNamed;
    b.relation = atom.predicate;
    const std::string var = b.var;
    q->bindings.push_back(std::move(b));
    std::vector<FormulaPtr> conjuncts;
    for (size_t i = 0; i < atom.args.size(); ++i) {
      const DlTerm& arg = *atom.args[i];
      if (arg.kind == DlTermKind::kUnderscore) continue;
      ARC_ASSIGN_OR_RETURN(TermPtr value, TranslateDlTerm(arg, *ctx));
      conjuncts.push_back(MakePredicate(
          data::CmpOp::kEq, MakeAttrRef(var, attrs[i]), std::move(value)));
    }
    if (conjuncts.empty()) {
      conjuncts.push_back(MakeAnd({}));
    }
    q->body = conjuncts.size() == 1 ? std::move(conjuncts[0])
                                    : MakeAnd(std::move(conjuncts));
    return MakeNot(MakeExists(std::move(q)));
  }

  /// Soufflé aggregate → FOI: x ∈ {X(v) | ∃ locals…, γ∅ [joins ∧
  /// X.v = agg(target)]}, result repr = x.v (Eq. 7).
  Status TranslateAggregate(const Aggregate& agg, RuleCtx* ctx,
                            Quantifier* q) {
    auto inner_q = std::make_unique<Quantifier>();
    inner_q->grouping = Grouping{};  // γ∅
    const std::string inner_head = ctx->FreshVar("Agg");
    // Local reprs extend the outer ones: outer-bound variables correlate.
    RuleCtx inner_ctx;
    inner_ctx.var_counter = ctx->var_counter + 100;
    auto find_repr = [&](const std::string& var) -> const Term* {
      if (const Term* t = inner_ctx.FindRepr(var)) return t;
      return ctx->FindRepr(var);
    };
    for (const Atom& atom : agg.body_atoms) {
      ARC_ASSIGN_OR_RETURN(std::vector<std::string> attrs, AttrsOf(atom));
      Binding b;
      b.var = inner_ctx.FreshVar("s");
      b.range_kind = RangeKind::kNamed;
      b.relation = atom.predicate;
      const std::string var = b.var;
      inner_q->bindings.push_back(std::move(b));
      for (size_t i = 0; i < atom.args.size(); ++i) {
        const DlTerm& arg = *atom.args[i];
        switch (arg.kind) {
          case DlTermKind::kUnderscore:
            break;
          case DlTermKind::kVar: {
            const Term* repr = find_repr(arg.var);
            if (repr == nullptr) {
              inner_ctx.AddRepr(arg.var, MakeAttrRef(var, attrs[i]));
            } else {
              inner_ctx.conjuncts.push_back(
                  MakePredicate(data::CmpOp::kEq, MakeAttrRef(var, attrs[i]),
                                repr->Clone()));
            }
            break;
          }
          case DlTermKind::kConst:
            inner_ctx.conjuncts.push_back(
                MakePredicate(data::CmpOp::kEq, MakeAttrRef(var, attrs[i]),
                              MakeLiteral(arg.value)));
            break;
          case DlTermKind::kArith:
            return Unsupported("arithmetic inside aggregate atom arguments");
        }
      }
    }
    auto translate_local = [&](const DlTerm& t) -> Result<TermPtr> {
      return TranslateDlTermWith(t, [&](const std::string& var) {
        return find_repr(var);
      });
    };
    for (const Aggregate::Comparison& c : agg.body_comparisons) {
      ARC_ASSIGN_OR_RETURN(TermPtr lhs, translate_local(*c.lhs));
      ARC_ASSIGN_OR_RETURN(TermPtr rhs, translate_local(*c.rhs));
      inner_ctx.conjuncts.push_back(
          MakePredicate(c.op, std::move(lhs), std::move(rhs)));
    }
    TermPtr agg_term;
    if (agg.func == AggFunc::kCount && !agg.target) {
      agg_term = MakeAggregate(AggFunc::kCountStar, nullptr);
    } else {
      ARC_ASSIGN_OR_RETURN(TermPtr target, translate_local(*agg.target));
      agg_term = MakeAggregate(agg.func, std::move(target));
    }
    inner_ctx.conjuncts.push_back(MakePredicate(
        data::CmpOp::kEq, MakeAttrRef(inner_head, "v"), std::move(agg_term)));
    inner_q->body = inner_ctx.conjuncts.size() == 1
                        ? std::move(inner_ctx.conjuncts[0])
                        : MakeAnd(std::move(inner_ctx.conjuncts));
    Head head;
    head.relation = inner_head;
    head.attrs = {"v"};
    CollectionPtr inner =
        MakeCollection(std::move(head), MakeExists(std::move(inner_q)));

    Binding outer;
    outer.var = ctx->FreshVar("x");
    outer.range_kind = RangeKind::kCollection;
    outer.collection = std::move(inner);
    const std::string outer_var = outer.var;
    q->bindings.push_back(std::move(outer));
    // The result variable's representative is x.v.
    const Term* existing = ctx->FindRepr(agg.result_var);
    if (existing != nullptr) {
      ctx->conjuncts.push_back(MakePredicate(data::CmpOp::kEq,
                                             MakeAttrRef(outer_var, "v"),
                                             existing->Clone()));
    } else {
      ctx->AddRepr(agg.result_var, MakeAttrRef(outer_var, "v"));
    }
    return Status::Ok();
  }

  Result<TermPtr> TranslateDlTerm(const DlTerm& t, const RuleCtx& ctx) {
    return TranslateDlTermWith(
        t, [&](const std::string& var) { return ctx.FindRepr(var); });
  }

  template <typename Lookup>
  Result<TermPtr> TranslateDlTermWith(const DlTerm& t, Lookup lookup) {
    switch (t.kind) {
      case DlTermKind::kConst:
        return MakeLiteral(t.value);
      case DlTermKind::kVar: {
        const Term* repr = lookup(t.var);
        if (repr == nullptr) {
          return InvalidArgument("Datalog variable '" + t.var +
                                 "' is not bound by a positive atom");
        }
        return repr->Clone();
      }
      case DlTermKind::kUnderscore:
        return InvalidArgument("'_' cannot be used as a value");
      case DlTermKind::kArith: {
        ARC_ASSIGN_OR_RETURN(TermPtr lhs, TranslateDlTermWith(*t.lhs, lookup));
        ARC_ASSIGN_OR_RETURN(TermPtr rhs, TranslateDlTermWith(*t.rhs, lookup));
        return MakeArith(t.op, std::move(lhs), std::move(rhs));
      }
    }
    return Internal("bad Datalog term");
  }

  const DlProgram& program_;
  std::unordered_map<std::string, PredInfo> preds_;
};

}  // namespace

Result<Program> DatalogToArc(const datalog::DlProgram& program,
                             std::string_view query_predicate) {
  return DlTranslator(program).Run(query_predicate);
}

}  // namespace arc::translate
