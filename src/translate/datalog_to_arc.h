// Datalog → ARC translation (§2.9, §2.5):
//   * multiple rules with one head become a single collection whose body is
//     the disjunction of the rules (Eq. 16),
//   * positional atoms become named bindings with explicit equality
//     predicates (the named perspective, §2.1),
//   * negated atoms become ¬∃ scopes,
//   * Soufflé aggregates become the FOI pattern: a correlated nested
//     collection with γ∅ (Eq. 6 ↦ Eq. 7),
//   * facts become FROM-less disjuncts of assignment predicates,
//   * recursion becomes a recursive collection (least fixpoint).
//
// The translated program evaluated under Conventions::Souffle() is
// execution-equivalent to the semi-naive Datalog engine (differential
// tests).
#ifndef ARC_TRANSLATE_DATALOG_TO_ARC_H_
#define ARC_TRANSLATE_DATALOG_TO_ARC_H_

#include "arc/ast.h"
#include "common/status.h"
#include "datalog/ast.h"

namespace arc::translate {

/// Translates the program; the collection for `query_predicate` becomes the
/// main query, all other IDB predicates become intensional definitions.
/// Mutual recursion across predicates is not supported (self-recursion is).
Result<Program> DatalogToArc(const datalog::DlProgram& program,
                             std::string_view query_predicate);

}  // namespace arc::translate

#endif  // ARC_TRANSLATE_DATALOG_TO_ARC_H_
