// SQL → ARC translation: turns the surface syntax tree of a SQL query into
// the pattern-preserving ALT the paper prescribes:
//   * SELECT items     → assignment predicates (§2.1),
//   * FROM             → quantifier bindings (tables, nested collections for
//                        subqueries — always lateral in ARC),
//   * JOIN … ON        → join-annotation trees (§2.11), with literal
//                        anchors for preserved-side constant conditions,
//   * WHERE            → body conjuncts,
//   * GROUP BY/HAVING  → grouping operator γ; HAVING becomes a selection on
//                        a nested collection (Fig. 6),
//   * aggregates w/o GROUP BY → γ∅,
//   * DISTINCT         → grouping over the projected attributes (§2.7),
//   * [NOT] EXISTS     → (negated) quantifier scopes,
//   * IN / NOT IN      → ∃ / ¬∃ with explicit null checks (Eq. 17),
//   * scalar subqueries → lateral-join form (Fig. 13d); single-valued
//                        aggregates bind directly, general scalars via a
//                        left join annotation to preserve NULL-on-empty,
//   * WITH [RECURSIVE] → intensional definitions (recursive collections).
//
// The translated program evaluated under Conventions::Sql() is
// execution-equivalent to the SQL query under the direct SQL evaluator
// (validated by differential tests).
#ifndef ARC_TRANSLATE_SQL_TO_ARC_H_
#define ARC_TRANSLATE_SQL_TO_ARC_H_

#include "arc/ast.h"
#include "common/status.h"
#include "data/database.h"
#include "sql/ast.h"

namespace arc::translate {

struct SqlToArcOptions {
  /// Used to resolve unqualified column references and SELECT * against
  /// base-table schemas. Required for queries that use either.
  const data::Database* database = nullptr;
  /// Head relation name of the produced main collection.
  std::string head_name = "Q";
};

Result<Program> SqlToArc(const sql::SelectStmt& stmt,
                         const SqlToArcOptions& options = {});

/// Convenience: parse then translate.
Result<Program> SqlToArc(std::string_view sql,
                         const SqlToArcOptions& options = {});

}  // namespace arc::translate

#endif  // ARC_TRANSLATE_SQL_TO_ARC_H_
