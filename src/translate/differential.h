// Differential validation of convention-sensitivity lint warnings.
//
// A kConvention lint finding (arc/lint.h) claims that a program's result
// depends on an interpretation convention (§2.6/§2.7): set vs. bag
// multiplicity, three- vs. two-valued null logic, or NULL vs. neutral
// empty-aggregate initialization. Static shape analysis can over-approximate
// — this harness makes the claim *operational*: it searches small mutations
// of a database instance (duplicated rows, injected NULLs, emptied
// relations) for one on which evaluating the program under the two
// conventions produces observably different results. A warning backed by
// such a witness is, by construction, not a false alarm.
//
// Witnesses are additionally cross-checked against the independent SQL
// engine: the program is rendered to SQL (translate/arc_to_sql.h) and the
// SQL result on the witness instance must agree with the ARC evaluator
// under SQL conventions.
#ifndef ARC_TRANSLATE_DIFFERENTIAL_H_
#define ARC_TRANSLATE_DIFFERENTIAL_H_

#include <optional>
#include <string>
#include <vector>

#include "arc/conventions.h"
#include "arc/lint.h"
#include "common/status.h"
#include "data/database.h"

namespace arc::translate {

/// A concrete demonstration that the program's result depends on one
/// convention dimension.
struct DivergenceWitness {
  ConventionDimension dimension;
  /// Name of the instance mutation that exposed the divergence
  /// ("identity", "dup-row(R)", "null-cell(R.a)", "empty(R)", ...).
  std::string mutation;
  /// The mutated instance the divergence was observed on.
  data::Database instance;
  Conventions base;    // reference conventions (Conventions::Arc())
  Conventions varied;  // base with `dimension` flipped
  /// Results under the two conventions (bag-compared; for sentence
  /// programs the 0/1-row encodings of the truth value).
  data::Relation base_result;
  data::Relation varied_result;
  /// True when the independent SQL engine, run on the rendered SQL over
  /// `instance`, agreed with the ARC evaluator under SQL conventions.
  bool sql_cross_checked = false;

  std::string ToString() const;
};

/// Returns `base` with `dimension` flipped away from its value in `base`.
Conventions FlipConvention(const Conventions& base, ConventionDimension d);

/// Searches mutations of `db` for an instance on which `program` evaluates
/// to different results under Conventions::Arc() and the flipped
/// convention. Returns nullopt when no mutation in the menu realizes a
/// divergence (the dimension appears insensitive for this program).
/// Mutants on which evaluation fails (e.g. unsupported external access
/// patterns) are skipped. When `observed_output` is non-null it is set to
/// whether any probed instance produced a non-empty result under either
/// convention — false means the program is observationally dead on the
/// whole menu, so no behavioral claim about it is falsifiable.
std::optional<DivergenceWitness> ExhibitDivergence(
    const Program& program, const data::Database& db,
    ConventionDimension dimension, bool* observed_output = nullptr);

/// Bound parameters for the exhaustive witness search (see
/// verify/bounded_eq.h for the enumeration model).
struct BoundedWitnessOptions {
  /// Active-domain size (non-null values); program literals seed the pool.
  int domain_size = 2;
  /// Per-relation cardinality cap.
  int max_rows = 2;
  bool include_null = true;
};

/// Exhaustive escalation of ExhibitDivergence: instead of probing the
/// mutation menu around `db`, enumerates *every* instance over `db`'s
/// schema with at most `domain_size` values and `max_rows` rows per
/// relation (ascending total row count), and returns the first — hence
/// row-count-minimal — instance on which the program's results under
/// Conventions::Arc() and the flipped convention differ. Returns nullopt
/// when no instance within the bound diverges: unlike the sampled search,
/// that is evidence of bounded *in*sensitivity, not merely of a miss.
std::optional<DivergenceWitness> ExhibitDivergenceBounded(
    const Program& program, const data::Database& db,
    ConventionDimension dimension, const BoundedWitnessOptions& opts = {});

/// Per-dimension outcome of validating one linted program.
struct LintValidationReport {
  struct Entry {
    ConventionDimension dimension;
    /// Number of kConvention findings with this dimension.
    int warnings = 0;
    std::optional<DivergenceWitness> witness;
    /// No witness AND no probed instance produced any output: the program
    /// is observationally dead on the mutation menu, so the warning is
    /// unfalsifiable there (vacuously consistent) rather than refuted.
    bool vacuous = false;
  };
  std::vector<Entry> entries;

  /// True when every warned-about dimension has a witness or was probed
  /// vacuous (dead program).
  bool AllConfirmed() const;
  std::string ToString() const;
};

/// For each convention dimension some lint finding warns about, attempts
/// to exhibit a realizing divergence on mutations of `db`.
LintValidationReport ValidateConventionWarnings(const Program& program,
                                                const data::Database& db,
                                                const LintResult& lint);

}  // namespace arc::translate

#endif  // ARC_TRANSLATE_DIFFERENTIAL_H_
