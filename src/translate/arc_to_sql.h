// ARC → SQL rendering: turns an ALT back into executable SQL.
//   * assignment predicates → SELECT items,
//   * bindings → FROM (nested collections as LATERAL subqueries),
//   * grouping γ → GROUP BY (γ∅ → implicit single group),
//   * aggregate comparison predicates → HAVING,
//   * join annotations → JOIN trees with ON conditions (literal anchors
//     become one-row FROM-less subqueries),
//   * ∃ / ¬∃ scopes in predicate position → EXISTS / NOT EXISTS,
//   * disjunctive bodies → UNION [ALL],
//   * recursive collections → WITH RECURSIVE,
//   * intensional definitions → CTEs,
//   * abstract-relation bindings → inlined, parameter-substituted
//     conditions (modules are spliced back into the surface syntax).
//
// With `emulate_set_semantics`, every rendered SELECT gets DISTINCT and
// UNION is used instead of UNION ALL so that the SQL result (bag world)
// matches the ARC result under set conventions.
#ifndef ARC_TRANSLATE_ARC_TO_SQL_H_
#define ARC_TRANSLATE_ARC_TO_SQL_H_

#include "arc/ast.h"
#include "common/status.h"
#include "sql/ast.h"

namespace arc::translate {

struct ArcToSqlOptions {
  /// Add DISTINCT / use UNION so SQL (bag) matches ARC set conventions.
  bool emulate_set_semantics = false;
};

Result<sql::SelectPtr> ArcToSql(const Program& program,
                                const ArcToSqlOptions& options = {});

/// Renders a Boolean sentence (Fig. 9) as `SELECT TRUE AS v WHERE <cond>`
/// — a unary relation encoding the truth value, as the paper notes SQL
/// must do.
Result<sql::SelectPtr> ArcSentenceToSql(const Program& program,
                                        const ArcToSqlOptions& options = {});

/// Convenience: render to SQL text.
Result<std::string> ArcToSqlText(const Program& program,
                                 const ArcToSqlOptions& options = {});

}  // namespace arc::translate

#endif  // ARC_TRANSLATE_ARC_TO_SQL_H_
