file(REMOVE_RECURSE
  "CMakeFiles/nl2sql_validate.dir/nl2sql_validate.cpp.o"
  "CMakeFiles/nl2sql_validate.dir/nl2sql_validate.cpp.o.d"
  "nl2sql_validate"
  "nl2sql_validate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nl2sql_validate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
