# Empty dependencies file for nl2sql_validate.
# This may be replaced when dependencies are built.
