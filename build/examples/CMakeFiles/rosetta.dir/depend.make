# Empty dependencies file for rosetta.
# This may be replaced when dependencies are built.
