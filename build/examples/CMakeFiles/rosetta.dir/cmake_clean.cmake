file(REMOVE_RECURSE
  "CMakeFiles/rosetta.dir/rosetta.cpp.o"
  "CMakeFiles/rosetta.dir/rosetta.cpp.o.d"
  "rosetta"
  "rosetta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rosetta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
