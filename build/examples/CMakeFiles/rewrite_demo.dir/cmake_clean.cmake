file(REMOVE_RECURSE
  "CMakeFiles/rewrite_demo.dir/rewrite_demo.cpp.o"
  "CMakeFiles/rewrite_demo.dir/rewrite_demo.cpp.o.d"
  "rewrite_demo"
  "rewrite_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rewrite_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
