# Empty dependencies file for rewrite_demo.
# This may be replaced when dependencies are built.
