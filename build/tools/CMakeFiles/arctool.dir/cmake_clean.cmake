file(REMOVE_RECURSE
  "CMakeFiles/arctool.dir/arctool.cpp.o"
  "CMakeFiles/arctool.dir/arctool.cpp.o.d"
  "arctool"
  "arctool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arctool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
