# Empty compiler generated dependencies file for arctool.
# This may be replaced when dependencies are built.
