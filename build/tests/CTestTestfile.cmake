# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_data[1]_include.cmake")
include("/root/repo/build/tests/test_arc[1]_include.cmake")
include("/root/repo/build/tests/test_text[1]_include.cmake")
include("/root/repo/build/tests/test_eval[1]_include.cmake")
include("/root/repo/build/tests/test_sql[1]_include.cmake")
include("/root/repo/build/tests/test_translate[1]_include.cmake")
include("/root/repo/build/tests/test_datalog[1]_include.cmake")
include("/root/repo/build/tests/test_higraph[1]_include.cmake")
include("/root/repo/build/tests/test_pattern[1]_include.cmake")
include("/root/repo/build/tests/test_property[1]_include.cmake")
include("/root/repo/build/tests/test_csv_alt[1]_include.cmake")
include("/root/repo/build/tests/test_rewrite[1]_include.cmake")
include("/root/repo/build/tests/test_eval_edge[1]_include.cmake")
add_test(arctool_render "/root/repo/build/tools/arctool" "render" "--arc" "{Q(A) | exists r in R [Q.A = r.A]}" "--modality" "alt")
set_tests_properties(arctool_render PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;54;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(arctool_eval "/root/repo/build/tools/arctool" "eval" "--sql" "select R.A, sum(R.B) s from R group by R.A" "--setup" "create table R (A int, B int); insert into R values (1,2),(1,3);" "--conventions" "sql")
set_tests_properties(arctool_eval PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;56;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(arctool_validate_rejects "/root/repo/build/tools/arctool" "validate" "--arc" "{Q(A) | exists r in R [Q.B = r.A]}")
set_tests_properties(arctool_validate_rejects PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;61;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(arctool_compare "/root/repo/build/tools/arctool" "compare" "--arc" "{Q(A) | exists r in R [Q.A = r.A]}" "--arc2" "{Q(A) | exists zz in R [Q.A = zz.A]}")
set_tests_properties(arctool_compare PROPERTIES  PASS_REGULAR_EXPRESSION "pattern-equal: yes" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;64;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(arctool_datalog "/root/repo/build/tools/arctool" "datalog" "--program" ".decl P(s, t)
P(0,1).
P(1,2).
A(x,y) :- P(x,y).
A(x,y) :- P(x,z), A(z,y)." "--query" "A")
set_tests_properties(arctool_datalog PROPERTIES  PASS_REGULAR_EXPRESSION "as ARC" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;70;add_test;/root/repo/tests/CMakeLists.txt;0;")
