# Empty dependencies file for test_higraph.
# This may be replaced when dependencies are built.
