file(REMOVE_RECURSE
  "CMakeFiles/test_higraph.dir/higraph_test.cc.o"
  "CMakeFiles/test_higraph.dir/higraph_test.cc.o.d"
  "test_higraph"
  "test_higraph.pdb"
  "test_higraph[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_higraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
