# Empty dependencies file for test_csv_alt.
# This may be replaced when dependencies are built.
