file(REMOVE_RECURSE
  "CMakeFiles/test_csv_alt.dir/csv_alt_test.cc.o"
  "CMakeFiles/test_csv_alt.dir/csv_alt_test.cc.o.d"
  "test_csv_alt"
  "test_csv_alt.pdb"
  "test_csv_alt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_csv_alt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
