file(REMOVE_RECURSE
  "CMakeFiles/test_eval_edge.dir/eval_edge_test.cc.o"
  "CMakeFiles/test_eval_edge.dir/eval_edge_test.cc.o.d"
  "test_eval_edge"
  "test_eval_edge.pdb"
  "test_eval_edge[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_eval_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
