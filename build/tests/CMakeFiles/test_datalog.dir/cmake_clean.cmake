file(REMOVE_RECURSE
  "CMakeFiles/test_datalog.dir/datalog_test.cc.o"
  "CMakeFiles/test_datalog.dir/datalog_test.cc.o.d"
  "test_datalog"
  "test_datalog.pdb"
  "test_datalog[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_datalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
