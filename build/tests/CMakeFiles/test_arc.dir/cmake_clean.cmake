file(REMOVE_RECURSE
  "CMakeFiles/test_arc.dir/arc_analyze_test.cc.o"
  "CMakeFiles/test_arc.dir/arc_analyze_test.cc.o.d"
  "CMakeFiles/test_arc.dir/arc_ast_test.cc.o"
  "CMakeFiles/test_arc.dir/arc_ast_test.cc.o.d"
  "test_arc"
  "test_arc.pdb"
  "test_arc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_arc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
