
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/pattern_test.cc" "tests/CMakeFiles/test_pattern.dir/pattern_test.cc.o" "gcc" "tests/CMakeFiles/test_pattern.dir/pattern_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pattern/CMakeFiles/arc_pattern.dir/DependInfo.cmake"
  "/root/repo/build/src/translate/CMakeFiles/arc_translate.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/arc_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/arc_text.dir/DependInfo.cmake"
  "/root/repo/build/src/arc/CMakeFiles/arc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/arc_data.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/arc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/datalog/CMakeFiles/arc_datalog.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
