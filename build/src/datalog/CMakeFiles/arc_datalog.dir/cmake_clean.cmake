file(REMOVE_RECURSE
  "CMakeFiles/arc_datalog.dir/ast.cc.o"
  "CMakeFiles/arc_datalog.dir/ast.cc.o.d"
  "CMakeFiles/arc_datalog.dir/eval.cc.o"
  "CMakeFiles/arc_datalog.dir/eval.cc.o.d"
  "CMakeFiles/arc_datalog.dir/parser.cc.o"
  "CMakeFiles/arc_datalog.dir/parser.cc.o.d"
  "libarc_datalog.a"
  "libarc_datalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arc_datalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
