# Empty dependencies file for arc_datalog.
# This may be replaced when dependencies are built.
