file(REMOVE_RECURSE
  "libarc_datalog.a"
)
