file(REMOVE_RECURSE
  "libarc_higraph.a"
)
