# Empty dependencies file for arc_higraph.
# This may be replaced when dependencies are built.
