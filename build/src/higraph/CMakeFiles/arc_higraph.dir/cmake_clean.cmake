file(REMOVE_RECURSE
  "CMakeFiles/arc_higraph.dir/higraph.cc.o"
  "CMakeFiles/arc_higraph.dir/higraph.cc.o.d"
  "CMakeFiles/arc_higraph.dir/render.cc.o"
  "CMakeFiles/arc_higraph.dir/render.cc.o.d"
  "libarc_higraph.a"
  "libarc_higraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arc_higraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
