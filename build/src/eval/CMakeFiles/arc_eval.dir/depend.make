# Empty dependencies file for arc_eval.
# This may be replaced when dependencies are built.
