file(REMOVE_RECURSE
  "CMakeFiles/arc_eval.dir/evaluator.cc.o"
  "CMakeFiles/arc_eval.dir/evaluator.cc.o.d"
  "libarc_eval.a"
  "libarc_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arc_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
