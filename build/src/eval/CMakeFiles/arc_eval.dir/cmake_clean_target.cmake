file(REMOVE_RECURSE
  "libarc_eval.a"
)
