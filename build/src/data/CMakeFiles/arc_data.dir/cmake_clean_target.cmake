file(REMOVE_RECURSE
  "libarc_data.a"
)
