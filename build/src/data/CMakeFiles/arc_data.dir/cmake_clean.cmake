file(REMOVE_RECURSE
  "CMakeFiles/arc_data.dir/csv.cc.o"
  "CMakeFiles/arc_data.dir/csv.cc.o.d"
  "CMakeFiles/arc_data.dir/database.cc.o"
  "CMakeFiles/arc_data.dir/database.cc.o.d"
  "CMakeFiles/arc_data.dir/generators.cc.o"
  "CMakeFiles/arc_data.dir/generators.cc.o.d"
  "CMakeFiles/arc_data.dir/relation.cc.o"
  "CMakeFiles/arc_data.dir/relation.cc.o.d"
  "CMakeFiles/arc_data.dir/value.cc.o"
  "CMakeFiles/arc_data.dir/value.cc.o.d"
  "libarc_data.a"
  "libarc_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arc_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
