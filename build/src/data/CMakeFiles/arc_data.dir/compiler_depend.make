# Empty compiler generated dependencies file for arc_data.
# This may be replaced when dependencies are built.
