# Empty dependencies file for arc_core.
# This may be replaced when dependencies are built.
