file(REMOVE_RECURSE
  "CMakeFiles/arc_core.dir/analyze.cc.o"
  "CMakeFiles/arc_core.dir/analyze.cc.o.d"
  "CMakeFiles/arc_core.dir/ast.cc.o"
  "CMakeFiles/arc_core.dir/ast.cc.o.d"
  "CMakeFiles/arc_core.dir/external.cc.o"
  "CMakeFiles/arc_core.dir/external.cc.o.d"
  "CMakeFiles/arc_core.dir/random_query.cc.o"
  "CMakeFiles/arc_core.dir/random_query.cc.o.d"
  "libarc_core.a"
  "libarc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
