file(REMOVE_RECURSE
  "libarc_core.a"
)
