
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arc/analyze.cc" "src/arc/CMakeFiles/arc_core.dir/analyze.cc.o" "gcc" "src/arc/CMakeFiles/arc_core.dir/analyze.cc.o.d"
  "/root/repo/src/arc/ast.cc" "src/arc/CMakeFiles/arc_core.dir/ast.cc.o" "gcc" "src/arc/CMakeFiles/arc_core.dir/ast.cc.o.d"
  "/root/repo/src/arc/external.cc" "src/arc/CMakeFiles/arc_core.dir/external.cc.o" "gcc" "src/arc/CMakeFiles/arc_core.dir/external.cc.o.d"
  "/root/repo/src/arc/random_query.cc" "src/arc/CMakeFiles/arc_core.dir/random_query.cc.o" "gcc" "src/arc/CMakeFiles/arc_core.dir/random_query.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/arc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/arc_data.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
