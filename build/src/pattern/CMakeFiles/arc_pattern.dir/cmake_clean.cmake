file(REMOVE_RECURSE
  "CMakeFiles/arc_pattern.dir/pattern.cc.o"
  "CMakeFiles/arc_pattern.dir/pattern.cc.o.d"
  "libarc_pattern.a"
  "libarc_pattern.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arc_pattern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
