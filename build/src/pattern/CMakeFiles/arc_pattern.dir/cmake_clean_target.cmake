file(REMOVE_RECURSE
  "libarc_pattern.a"
)
