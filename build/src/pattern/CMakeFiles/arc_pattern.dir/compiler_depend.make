# Empty compiler generated dependencies file for arc_pattern.
# This may be replaced when dependencies are built.
