# Empty dependencies file for arc_sql.
# This may be replaced when dependencies are built.
