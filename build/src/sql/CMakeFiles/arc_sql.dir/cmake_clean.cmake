file(REMOVE_RECURSE
  "CMakeFiles/arc_sql.dir/ast.cc.o"
  "CMakeFiles/arc_sql.dir/ast.cc.o.d"
  "CMakeFiles/arc_sql.dir/eval.cc.o"
  "CMakeFiles/arc_sql.dir/eval.cc.o.d"
  "CMakeFiles/arc_sql.dir/parser.cc.o"
  "CMakeFiles/arc_sql.dir/parser.cc.o.d"
  "libarc_sql.a"
  "libarc_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arc_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
