file(REMOVE_RECURSE
  "libarc_sql.a"
)
