
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/translate/arc_to_sql.cc" "src/translate/CMakeFiles/arc_translate.dir/arc_to_sql.cc.o" "gcc" "src/translate/CMakeFiles/arc_translate.dir/arc_to_sql.cc.o.d"
  "/root/repo/src/translate/datalog_to_arc.cc" "src/translate/CMakeFiles/arc_translate.dir/datalog_to_arc.cc.o" "gcc" "src/translate/CMakeFiles/arc_translate.dir/datalog_to_arc.cc.o.d"
  "/root/repo/src/translate/sql_to_arc.cc" "src/translate/CMakeFiles/arc_translate.dir/sql_to_arc.cc.o" "gcc" "src/translate/CMakeFiles/arc_translate.dir/sql_to_arc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/arc/CMakeFiles/arc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/arc_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/datalog/CMakeFiles/arc_datalog.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/arc_data.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/arc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
