file(REMOVE_RECURSE
  "libarc_translate.a"
)
