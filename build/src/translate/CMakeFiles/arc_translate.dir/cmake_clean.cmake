file(REMOVE_RECURSE
  "CMakeFiles/arc_translate.dir/arc_to_sql.cc.o"
  "CMakeFiles/arc_translate.dir/arc_to_sql.cc.o.d"
  "CMakeFiles/arc_translate.dir/datalog_to_arc.cc.o"
  "CMakeFiles/arc_translate.dir/datalog_to_arc.cc.o.d"
  "CMakeFiles/arc_translate.dir/sql_to_arc.cc.o"
  "CMakeFiles/arc_translate.dir/sql_to_arc.cc.o.d"
  "libarc_translate.a"
  "libarc_translate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arc_translate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
