# Empty dependencies file for arc_translate.
# This may be replaced when dependencies are built.
