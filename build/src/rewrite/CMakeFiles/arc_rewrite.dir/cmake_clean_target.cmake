file(REMOVE_RECURSE
  "libarc_rewrite.a"
)
