file(REMOVE_RECURSE
  "CMakeFiles/arc_rewrite.dir/rewriter.cc.o"
  "CMakeFiles/arc_rewrite.dir/rewriter.cc.o.d"
  "libarc_rewrite.a"
  "libarc_rewrite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arc_rewrite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
