# Empty compiler generated dependencies file for arc_rewrite.
# This may be replaced when dependencies are built.
