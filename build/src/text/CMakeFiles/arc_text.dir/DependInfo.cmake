
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/text/alt_parser.cc" "src/text/CMakeFiles/arc_text.dir/alt_parser.cc.o" "gcc" "src/text/CMakeFiles/arc_text.dir/alt_parser.cc.o.d"
  "/root/repo/src/text/lexer.cc" "src/text/CMakeFiles/arc_text.dir/lexer.cc.o" "gcc" "src/text/CMakeFiles/arc_text.dir/lexer.cc.o.d"
  "/root/repo/src/text/parser.cc" "src/text/CMakeFiles/arc_text.dir/parser.cc.o" "gcc" "src/text/CMakeFiles/arc_text.dir/parser.cc.o.d"
  "/root/repo/src/text/printer.cc" "src/text/CMakeFiles/arc_text.dir/printer.cc.o" "gcc" "src/text/CMakeFiles/arc_text.dir/printer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/arc/CMakeFiles/arc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/arc_data.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/arc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
