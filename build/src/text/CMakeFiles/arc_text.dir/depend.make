# Empty dependencies file for arc_text.
# This may be replaced when dependencies are built.
