file(REMOVE_RECURSE
  "libarc_text.a"
)
