file(REMOVE_RECURSE
  "CMakeFiles/arc_text.dir/alt_parser.cc.o"
  "CMakeFiles/arc_text.dir/alt_parser.cc.o.d"
  "CMakeFiles/arc_text.dir/lexer.cc.o"
  "CMakeFiles/arc_text.dir/lexer.cc.o.d"
  "CMakeFiles/arc_text.dir/parser.cc.o"
  "CMakeFiles/arc_text.dir/parser.cc.o.d"
  "CMakeFiles/arc_text.dir/printer.cc.o"
  "CMakeFiles/arc_text.dir/printer.cc.o.d"
  "libarc_text.a"
  "libarc_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arc_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
