file(REMOVE_RECURSE
  "CMakeFiles/arc_common.dir/status.cc.o"
  "CMakeFiles/arc_common.dir/status.cc.o.d"
  "CMakeFiles/arc_common.dir/strings.cc.o"
  "CMakeFiles/arc_common.dir/strings.cc.o.d"
  "libarc_common.a"
  "libarc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
