# Empty dependencies file for arc_common.
# This may be replaced when dependencies are built.
