file(REMOVE_RECURSE
  "libarc_common.a"
)
