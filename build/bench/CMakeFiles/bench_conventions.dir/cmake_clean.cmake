file(REMOVE_RECURSE
  "CMakeFiles/bench_conventions.dir/bench_conventions.cpp.o"
  "CMakeFiles/bench_conventions.dir/bench_conventions.cpp.o.d"
  "bench_conventions"
  "bench_conventions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_conventions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
