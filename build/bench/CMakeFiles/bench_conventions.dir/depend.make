# Empty dependencies file for bench_conventions.
# This may be replaced when dependencies are built.
