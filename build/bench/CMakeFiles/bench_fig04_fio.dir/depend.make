# Empty dependencies file for bench_fig04_fio.
# This may be replaced when dependencies are built.
