file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_fio.dir/bench_fig04_fio.cpp.o"
  "CMakeFiles/bench_fig04_fio.dir/bench_fig04_fio.cpp.o.d"
  "bench_fig04_fio"
  "bench_fig04_fio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_fio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
