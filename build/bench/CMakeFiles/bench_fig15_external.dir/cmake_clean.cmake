file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_external.dir/bench_fig15_external.cpp.o"
  "CMakeFiles/bench_fig15_external.dir/bench_fig15_external.cpp.o.d"
  "bench_fig15_external"
  "bench_fig15_external.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_external.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
