file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_foi.dir/bench_fig05_foi.cpp.o"
  "CMakeFiles/bench_fig05_foi.dir/bench_fig05_foi.cpp.o.d"
  "bench_fig05_foi"
  "bench_fig05_foi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_foi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
