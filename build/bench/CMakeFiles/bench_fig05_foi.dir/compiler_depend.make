# Empty compiler generated dependencies file for bench_fig05_foi.
# This may be replaced when dependencies are built.
