# Empty dependencies file for bench_fig08_rel.
# This may be replaced when dependencies are built.
