file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_rel.dir/bench_fig08_rel.cpp.o"
  "CMakeFiles/bench_fig08_rel.dir/bench_fig08_rel.cpp.o.d"
  "bench_fig08_rel"
  "bench_fig08_rel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_rel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
