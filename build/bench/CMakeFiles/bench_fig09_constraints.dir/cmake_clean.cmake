file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_constraints.dir/bench_fig09_constraints.cpp.o"
  "CMakeFiles/bench_fig09_constraints.dir/bench_fig09_constraints.cpp.o.d"
  "bench_fig09_constraints"
  "bench_fig09_constraints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_constraints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
