file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_lateral.dir/bench_fig03_lateral.cpp.o"
  "CMakeFiles/bench_fig03_lateral.dir/bench_fig03_lateral.cpp.o.d"
  "bench_fig03_lateral"
  "bench_fig03_lateral.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_lateral.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
