file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_outerjoin.dir/bench_fig12_outerjoin.cpp.o"
  "CMakeFiles/bench_fig12_outerjoin.dir/bench_fig12_outerjoin.cpp.o.d"
  "bench_fig12_outerjoin"
  "bench_fig12_outerjoin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_outerjoin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
