file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_multiagg.dir/bench_fig06_multiagg.cpp.o"
  "CMakeFiles/bench_fig06_multiagg.dir/bench_fig06_multiagg.cpp.o.d"
  "bench_fig06_multiagg"
  "bench_fig06_multiagg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_multiagg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
