# Empty dependencies file for bench_fig06_multiagg.
# This may be replaced when dependencies are built.
