# Empty dependencies file for bench_fig17_uniqueset.
# This may be replaced when dependencies are built.
