file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_uniqueset.dir/bench_fig17_uniqueset.cpp.o"
  "CMakeFiles/bench_fig17_uniqueset.dir/bench_fig17_uniqueset.cpp.o.d"
  "bench_fig17_uniqueset"
  "bench_fig17_uniqueset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_uniqueset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
