# Empty dependencies file for bench_setbag.
# This may be replaced when dependencies are built.
