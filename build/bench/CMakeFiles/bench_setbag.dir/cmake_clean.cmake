file(REMOVE_RECURSE
  "CMakeFiles/bench_setbag.dir/bench_setbag.cpp.o"
  "CMakeFiles/bench_setbag.dir/bench_setbag.cpp.o.d"
  "bench_setbag"
  "bench_setbag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_setbag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
