file(REMOVE_RECURSE
  "CMakeFiles/bench_fig21_countbug.dir/bench_fig21_countbug.cpp.o"
  "CMakeFiles/bench_fig21_countbug.dir/bench_fig21_countbug.cpp.o.d"
  "bench_fig21_countbug"
  "bench_fig21_countbug.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig21_countbug.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
