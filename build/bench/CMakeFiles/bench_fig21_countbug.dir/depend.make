# Empty dependencies file for bench_fig21_countbug.
# This may be replaced when dependencies are built.
