file(REMOVE_RECURSE
  "CMakeFiles/bench_pattern.dir/bench_pattern.cpp.o"
  "CMakeFiles/bench_pattern.dir/bench_pattern.cpp.o.d"
  "bench_pattern"
  "bench_pattern.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pattern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
