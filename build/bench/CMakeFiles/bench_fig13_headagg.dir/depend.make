# Empty dependencies file for bench_fig13_headagg.
# This may be replaced when dependencies are built.
