file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_headagg.dir/bench_fig13_headagg.cpp.o"
  "CMakeFiles/bench_fig13_headagg.dir/bench_fig13_headagg.cpp.o.d"
  "bench_fig13_headagg"
  "bench_fig13_headagg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_headagg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
