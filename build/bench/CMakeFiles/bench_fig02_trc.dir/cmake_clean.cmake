file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_trc.dir/bench_fig02_trc.cpp.o"
  "CMakeFiles/bench_fig02_trc.dir/bench_fig02_trc.cpp.o.d"
  "bench_fig02_trc"
  "bench_fig02_trc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_trc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
