# Empty compiler generated dependencies file for bench_fig07_hella.
# This may be replaced when dependencies are built.
