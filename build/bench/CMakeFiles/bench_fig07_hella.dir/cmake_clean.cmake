file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_hella.dir/bench_fig07_hella.cpp.o"
  "CMakeFiles/bench_fig07_hella.dir/bench_fig07_hella.cpp.o.d"
  "bench_fig07_hella"
  "bench_fig07_hella.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_hella.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
