file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_recursion.dir/bench_fig10_recursion.cpp.o"
  "CMakeFiles/bench_fig10_recursion.dir/bench_fig10_recursion.cpp.o.d"
  "bench_fig10_recursion"
  "bench_fig10_recursion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_recursion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
