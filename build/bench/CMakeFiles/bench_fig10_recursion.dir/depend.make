# Empty dependencies file for bench_fig10_recursion.
# This may be replaced when dependencies are built.
