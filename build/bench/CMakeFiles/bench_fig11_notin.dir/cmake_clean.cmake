file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_notin.dir/bench_fig11_notin.cpp.o"
  "CMakeFiles/bench_fig11_notin.dir/bench_fig11_notin.cpp.o.d"
  "bench_fig11_notin"
  "bench_fig11_notin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_notin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
