// Matrix multiplication as a relational pattern (§3.1, Fig. 20, Eqs.
// 25-26): sparse matrices in (row, col, val) form multiplied by a single
// grouped-aggregate ARC query — once with inline arithmetic, once with the
// multiplication reified as the external relation "*" (§2.13.1) — and
// verified against a dense triple loop.
#include <cstdio>
#include <vector>

#include "data/generators.h"
#include "eval/evaluator.h"
#include "higraph/higraph.h"
#include "text/parser.h"
#include "text/printer.h"

namespace {

constexpr int64_t kN = 24;

std::vector<std::vector<int64_t>> ToDense(const arc::data::Relation& m) {
  std::vector<std::vector<int64_t>> out(
      kN, std::vector<int64_t>(static_cast<size_t>(kN), 0));
  for (const arc::data::Tuple& t : m.rows()) {
    out[static_cast<size_t>(t.at(0).as_int())]
       [static_cast<size_t>(t.at(1).as_int())] = t.at(2).as_int();
  }
  return out;
}

}  // namespace

int main() {
  arc::data::Database db;
  db.Put("A", arc::data::SparseMatrix(kN, 0.2, 1));
  db.Put("B", arc::data::SparseMatrix(kN, 0.2, 2));
  std::printf("A: %lld nonzeros, B: %lld nonzeros (n = %lld)\n\n",
              static_cast<long long>(db.GetPtr("A")->size()),
              static_cast<long long>(db.GetPtr("B")->size()),
              static_cast<long long>(kN));

  // Eq. (26): inline arithmetic.
  const char* inline_q =
      "{C(row, col, val) | exists a in A, b in B, gamma(a.row, b.col) "
      "[C.row = a.row and C.col = b.col and a.col = b.row and "
      "C.val = sum(a.val * b.val)]}";
  // Fig. 20: the external relation "*"($1, $2, out).
  const char* reified_q =
      "{C(row, col, val) | exists a in A, b in B, f in \"*\", "
      "gamma(a.row, b.col) [C.row = a.row and C.col = b.col and "
      "a.col = b.row and C.val = sum(f.out) and "
      "f.$1 = a.val and f.$2 = b.val]}";

  std::printf("ARC (inline arithmetic, Eq. 26):\n  %s\n\n", inline_q);
  std::printf("ARC (reified \"*\", Fig. 20):\n  %s\n\n", reified_q);

  auto p1 = arc::text::ParseProgram(inline_q);
  auto p2 = arc::text::ParseProgram(reified_q);
  if (!p1.ok() || !p2.ok()) return 1;

  auto c1 = arc::eval::Eval(db, *p1);
  auto c2 = arc::eval::Eval(db, *p2);
  if (!c1.ok() || !c2.ok()) {
    std::printf("evaluation failed: %s %s\n", c1.status().ToString().c_str(),
                c2.status().ToString().c_str());
    return 1;
  }
  std::printf("inline result: %lld nonzero cells\n",
              static_cast<long long>(c1->size()));
  std::printf("reified result: %lld nonzero cells — identical: %s\n",
              static_cast<long long>(c2->size()),
              c1->EqualsSet(*c2) ? "yes" : "no");

  // Dense verification.
  auto a = ToDense(*db.GetPtr("A"));
  auto b = ToDense(*db.GetPtr("B"));
  std::vector<std::vector<int64_t>> dense(
      kN, std::vector<int64_t>(static_cast<size_t>(kN), 0));
  for (int64_t i = 0; i < kN; ++i) {
    for (int64_t k = 0; k < kN; ++k) {
      for (int64_t j = 0; j < kN; ++j) {
        dense[static_cast<size_t>(i)][static_cast<size_t>(j)] +=
            a[static_cast<size_t>(i)][static_cast<size_t>(k)] *
            b[static_cast<size_t>(k)][static_cast<size_t>(j)];
      }
    }
  }
  auto sparse = ToDense(*c1);
  bool equal = true;
  for (int64_t i = 0; i < kN && equal; ++i) {
    for (int64_t j = 0; j < kN && equal; ++j) {
      // The relational result omits cells whose pairing set is empty; a
      // dense 0 may be a present 0 (summed) or an absent cell.
      const int64_t got = sparse[static_cast<size_t>(i)][static_cast<size_t>(j)];
      const int64_t want =
          dense[static_cast<size_t>(i)][static_cast<size_t>(j)];
      if (got != 0 && got != want) equal = false;
      if (got == 0 && want != 0) {
        // must not be a missing nonzero
        bool present = false;
        for (const arc::data::Tuple& t : c1->rows()) {
          if (t.at(0).as_int() == i && t.at(1).as_int() == j) present = true;
        }
        if (!present) equal = false;
      }
    }
  }
  std::printf("matches dense triple-loop: %s\n\n", equal ? "yes" : "no");

  auto hg = arc::higraph::Build(*p2);
  if (hg.ok()) {
    std::printf("Fig. 20 higraph (ASCII):\n%s", arc::higraph::ToAscii(*hg).c_str());
  }
  return 0;
}
