// The count bug (§3.2, Fig. 21) end to end: the original nested query, the
// classic incorrect decorrelation, and the correct left-join decorrelation
// — each shown in SQL and in ARC's three modalities, executed on the
// paper's instance R = {(9,0)}, S = ∅, and compared as *patterns*.
//
// Writes higraph renderings (DOT + SVG) to the current directory.
#include <cstdio>
#include <fstream>
#include <string>

#include "data/generators.h"
#include "eval/evaluator.h"
#include "higraph/higraph.h"
#include "pattern/pattern.h"
#include "sql/eval.h"
#include "text/parser.h"
#include "text/printer.h"
#include "translate/sql_to_arc.h"

namespace {

struct Variant {
  const char* name;
  const char* sql;
  const char* arc;
};

constexpr Variant kVariants[] = {
    {"original (Fig. 21a / Eq. 27)",
     "select R.id from R where R.q = "
     "(select count(S.d) from S where S.id = R.id)",
     "{Q(id) | exists r in R [Q.id = r.id and exists s in S, gamma() "
     "[r.id = s.id and r.q = count(s.d)]]}"},
    {"incorrect decorrelation (Fig. 21b / Eq. 28)",
     "select R.id from R, (select S.id, count(S.d) ct from S group by S.id) X "
     "where R.id = X.id and R.q = X.ct",
     "{Q(id) | exists r in R, x in {X(id, ct) | exists s in S, gamma(s.id) "
     "[X.id = s.id and X.ct = count(s.d)]} "
     "[Q.id = r.id and r.id = x.id and r.q = x.ct]}"},
    {"correct decorrelation (Fig. 21c / Eq. 29)",
     "select R.id from R, (select R2.id, count(S.d) ct from R R2 left join S "
     "on R2.id = S.id group by R2.id) X where R.id = X.id and R.q = X.ct",
     "{Q(id) | exists r in R, x in {X(id, ct) | exists s in S, r2 in R, "
     "gamma(r2.id), left(r2, s) [X.id = r2.id and X.ct = count(s.d) and "
     "r2.id = s.id]} [Q.id = r.id and r.id = x.id and r.q = x.ct]}"},
};

}  // namespace

int main() {
  arc::data::Database db = arc::data::CountBugInstance();
  std::printf("instance: R(id,q) = {(9,0)},  S(id,d) = {}\n\n");

  arc::sql::SqlEvaluator direct(db);
  for (const Variant& v : kVariants) {
    std::printf("=== %s ===\n", v.name);
    std::printf("SQL: %s\n", v.sql);
    auto sql_result = direct.EvalQuery(v.sql);
    if (!sql_result.ok()) {
      std::printf("SQL evaluation failed: %s\n",
                  sql_result.status().ToString().c_str());
      return 1;
    }
    auto program = arc::text::ParseProgram(v.arc);
    if (!program.ok()) {
      std::printf("parse failed: %s\n", program.status().ToString().c_str());
      return 1;
    }
    std::printf("ARC: %s\n", arc::text::PrintProgram(*program).c_str());
    arc::eval::EvalOptions eopts;
    eopts.conventions = arc::Conventions::Sql();
    auto arc_result = arc::eval::Eval(db, *program, eopts);
    if (!arc_result.ok()) {
      std::printf("ARC evaluation failed: %s\n",
                  arc_result.status().ToString().c_str());
      return 1;
    }
    std::printf("SQL result: %lld row(s); ARC result: %lld row(s); agree: %s\n",
                static_cast<long long>(sql_result->size()),
                static_cast<long long>(arc_result->size()),
                sql_result->EqualsBag(*arc_result) ? "yes" : "no");
    std::printf("%s\n", arc_result->ToString().c_str());

    // Write the higraph artifacts.
    auto hg = arc::higraph::Build(*program);
    if (hg.ok()) {
      const std::string base =
          v.name[0] == 'o' ? "count_bug_original"
                           : (v.name[0] == 'i' ? "count_bug_incorrect"
                                               : "count_bug_correct");
      std::ofstream(base + ".dot") << arc::higraph::ToDot(*hg);
      std::ofstream(base + ".svg") << arc::higraph::ToSvg(*hg);
      std::printf("higraph written to %s.dot / %s.svg\n", base.c_str(),
                  base.c_str());
    }
    std::printf("\n");
  }

  // The whole point: the paper says the bug becomes *sayable* at the
  // pattern level. Compare the three as patterns.
  auto p0 = arc::text::ParseProgram(kVariants[0].arc);
  auto p1 = arc::text::ParseProgram(kVariants[1].arc);
  auto p2 = arc::text::ParseProgram(kVariants[2].arc);
  std::printf("pattern analysis:\n");
  std::printf("  original:  %s\n",
              arc::pattern::ExtractFeatures(*p0).ToString().c_str());
  std::printf("  incorrect: %s\n",
              arc::pattern::ExtractFeatures(*p1).ToString().c_str());
  std::printf("  correct:   %s\n",
              arc::pattern::ExtractFeatures(*p2).ToString().c_str());
  std::printf("  similarity(original, incorrect) = %.3f\n",
              arc::pattern::Similarity(*p0, *p1));
  std::printf("  similarity(original, correct)   = %.3f\n",
              arc::pattern::Similarity(*p0, *p2));
  std::printf("  similarity(incorrect, correct)  = %.3f\n",
              arc::pattern::Similarity(*p1, *p2));
  std::printf(
      "\nDiagnosis in ARC vocabulary: the original uses the aggregate as a "
      "comparison\npredicate inside a correlated γ∅ scope (one group even "
      "when S is empty);\nthe incorrect rewrite groups by s.id, so empty ids "
      "produce no group;\nthe correct rewrite restores them with a left join "
      "annotation.\n");
  return 0;
}
