// ARC as a Rosetta Stone (§1, §2.5): the same intent — "for each key of R,
// the sum of its B values" — expressed in SQL, Soufflé-style Datalog, and
// ARC directly, all mapped into the common reference language.
//
// Shows: (i) SQL's GROUP BY becomes the FIO pattern; (ii) Soufflé's
// aggregate becomes the FOI pattern; (iii) both compute the same answer on
// a set instance; (iv) the §2.6 convention divergence (sum over an empty
// scope: Soufflé 0 vs SQL NULL) is reproduced by flipping the conventions
// switch, not by changing the query.
#include <cstdio>

#include "data/generators.h"
#include "datalog/eval.h"
#include "datalog/parser.h"
#include "eval/evaluator.h"
#include "pattern/pattern.h"
#include "sql/eval.h"
#include "text/parser.h"
#include "text/printer.h"
#include "translate/datalog_to_arc.h"
#include "translate/sql_to_arc.h"

int main() {
  auto db = arc::sql::ExecuteSetupScript(
      "create table R (a int, b int);"
      "insert into R values (1, 10), (1, 20), (2, 5);");
  if (!db.ok()) return 1;

  // --- The SQL face -----------------------------------------------------
  const char* sql = "select R.a, sum(R.b) sm from R group by R.a";
  std::printf("SQL        : %s\n", sql);
  arc::translate::SqlToArcOptions topts;
  topts.database = &*db;
  auto from_sql = arc::translate::SqlToArc(sql, topts);
  if (!from_sql.ok()) return 1;
  std::printf("  → ARC    : %s\n",
              arc::text::PrintProgram(*from_sql).c_str());
  std::printf("  pattern  : %s\n\n",
              arc::pattern::ExtractFeatures(*from_sql).ToString().c_str());

  // --- The Datalog face ---------------------------------------------------
  const char* datalog =
      ".decl R(a, b)\n"
      ".decl K(a)\n"
      "K(a) :- R(a, _).\n"
      "Q(a, sm) :- K(a), sm = sum b : { R(a2, b), a2 = a }.\n";
  std::printf("Datalog    :\n%s", datalog);
  auto dl = arc::datalog::ParseDatalog(datalog);
  if (!dl.ok()) return 1;
  auto from_dl = arc::translate::DatalogToArc(*dl, "Q");
  if (!from_dl.ok()) {
    std::printf("datalog translation failed: %s\n",
                from_dl.status().ToString().c_str());
    return 1;
  }
  std::printf("  → ARC    : %s\n",
              arc::text::PrintProgram(*from_dl).c_str());
  std::printf("  pattern  : %s\n\n",
              arc::pattern::ExtractFeatures(*from_dl).ToString().c_str());

  // --- Same answers on a duplicate-free instance ---------------------------
  arc::eval::EvalOptions sql_conv;
  sql_conv.conventions = arc::Conventions::Sql();
  arc::eval::EvalOptions souffle_conv;
  souffle_conv.conventions = arc::Conventions::Souffle();
  auto r_sql = arc::eval::Eval(*db, *from_sql, sql_conv);
  auto r_dl = arc::eval::Eval(*db, *from_dl, souffle_conv);
  arc::datalog::DlEvaluator engine(*db);
  auto r_engine = engine.Eval(*dl, "Q");
  if (!r_sql.ok() || !r_dl.ok() || !r_engine.ok()) {
    std::printf("evaluation failed\n");
    return 1;
  }
  std::printf("SQL-translated ARC result (bag conventions):\n%s\n",
              r_sql->Sorted().ToString().c_str());
  std::printf("Datalog-translated ARC result (Soufflé conventions):\n%s\n",
              r_dl->Sorted().ToString().c_str());
  std::printf("Datalog engine result:\n%s\n",
              r_engine->Sorted().ToString().c_str());
  std::printf("all three agree as sets: %s\n\n",
              r_sql->EqualsSet(*r_dl) && r_dl->EqualsSet(*r_engine) ? "yes"
                                                                    : "no");

  // --- The §2.6 convention divergence (Eq. 15) ------------------------------
  std::printf("—— conventions, not languages (§2.6 / Eq. 15) ——\n");
  arc::data::Database empty_s = arc::data::ConventionInstance();
  const char* foi =
      "{Q(ak, sm) | exists r in R, x in {X(sm) | exists s in S, gamma() "
      "[s.a < r.ak and X.sm = sum(s.b)]} "
      "[Q.ak = r.ak and Q.sm = x.sm]}";
  auto foi_program = arc::text::ParseProgram(foi);
  if (!foi_program.ok()) return 1;
  std::printf("one relational pattern: %s\n", foi);
  auto as_souffle = arc::eval::Eval(empty_s, *foi_program, souffle_conv);
  auto as_sql = arc::eval::Eval(empty_s, *foi_program, sql_conv);
  if (as_souffle.ok() && as_sql.ok()) {
    std::printf("under Soufflé conventions (sum ∅ = 0):\n%s",
                as_souffle->ToString().c_str());
    std::printf("under SQL conventions (sum ∅ = NULL):\n%s",
                as_sql->ToString().c_str());
  }
  return 0;
}
