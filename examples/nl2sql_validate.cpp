// ARC as an NL2SQL intermediate target (§1 ③, §4, §5): a generator (here,
// a stand-in for an LLM) proposes candidate ALTs for the intent
//   "for each department paying total salary over 100, the average salary",
// the validator checks them (well-scoped variables, grouping legality,
// clean heads — the checks the paper names), and the surviving candidate is
// rendered to SQL and executed.
#include <cstdio>
#include <vector>

#include "arc/analyze.h"
#include "eval/evaluator.h"
#include "pattern/pattern.h"
#include "sql/eval.h"
#include "text/parser.h"
#include "translate/arc_to_sql.h"

namespace {

struct Candidate {
  const char* note;
  const char* arc;
};

// Four machine-generated candidates; three contain classic generation
// mistakes the validator must catch.
constexpr Candidate kCandidates[] = {
    {"references a variable that is never bound (hallucinated range)",
     "{Q(dept, av) | exists x in {X(dept, av, sm) | "
     "exists r in R, s in S, gamma(r.dept) "
     "[X.dept = r.dept and X.av = avg(s2.sal) and X.sm = sum(s.sal) and "
     "r.empl = s.empl]} "
     "[Q.dept = x.dept and Q.av = x.av and x.sm > 100]}"},
    {"aggregate without a grouping scope (grouping legality)",
     "{Q(dept, av) | exists r in R, s in S "
     "[Q.dept = r.dept and Q.av = avg(s.sal) and r.empl = s.empl]}"},
    {"head attribute never assigned (unsafe head)",
     "{Q(dept, av) | exists x in {X(dept, av, sm) | "
     "exists r in R, s in S, gamma(r.dept) "
     "[X.dept = r.dept and X.av = avg(s.sal) and X.sm = sum(s.sal) and "
     "r.empl = s.empl]} "
     "[Q.dept = x.dept and x.sm > 100]}"},
    {"well-formed (Fig. 6 / Eq. 8 pattern)",
     "{Q(dept, av) | exists x in {X(dept, av, sm) | "
     "exists r in R, s in S, gamma(r.dept) "
     "[X.dept = r.dept and X.av = avg(s.sal) and X.sm = sum(s.sal) and "
     "r.empl = s.empl]} "
     "[Q.dept = x.dept and Q.av = x.av and x.sm > 100]}"},
};

}  // namespace

int main() {
  auto db = arc::sql::ExecuteSetupScript(
      "create table R (empl int, dept int);"
      "insert into R values (1,1),(2,1),(3,2);"
      "create table S (empl int, sal int);"
      "insert into S values (1,60),(2,60),(3,30);");
  if (!db.ok()) return 1;

  const arc::Program* accepted = nullptr;
  std::vector<arc::Program> programs;
  programs.reserve(4);
  for (const Candidate& c : kCandidates) {
    std::printf("candidate: %s\n", c.note);
    auto program = arc::text::ParseProgram(c.arc);
    if (!program.ok()) {
      std::printf("  parse error: %s\n\n",
                  program.status().ToString().c_str());
      continue;
    }
    arc::AnalyzeOptions opts;
    opts.database = &*db;
    arc::Analysis analysis = arc::Analyze(*program, opts);
    if (!analysis.ok()) {
      std::printf("  REJECTED by validator:\n");
      for (const std::string& e : analysis.ErrorMessages()) {
        std::printf("    - %s\n", e.c_str());
      }
      std::printf("\n");
      continue;
    }
    std::printf("  ACCEPTED (well-scoped, grouping legal, clean head)\n");
    std::printf("  pattern: %s\n\n",
                arc::pattern::ExtractFeatures(*program).ToString().c_str());
    programs.push_back(std::move(*program));
    accepted = &programs.back();
  }

  if (accepted == nullptr) {
    std::printf("no candidate survived validation\n");
    return 1;
  }

  // Render the accepted intent to SQL and execute (the paper's proposed
  // NL2SQL pipeline: generate → validate → render).
  auto sql = arc::translate::ArcToSqlText(*accepted);
  if (!sql.ok()) {
    std::printf("rendering failed: %s\n", sql.status().ToString().c_str());
    return 1;
  }
  std::printf("rendered SQL: %s\n", sql->c_str());
  arc::sql::SqlEvaluator direct(*db);
  auto via_sql = direct.EvalQuery(*sql);
  arc::eval::EvalOptions eopts;
  eopts.conventions = arc::Conventions::Sql();
  auto via_arc = arc::eval::Eval(*db, *accepted, eopts);
  if (via_sql.ok() && via_arc.ok()) {
    std::printf("result:\n%s", via_sql->Sorted().ToString().c_str());
    std::printf("SQL execution agrees with ARC semantics: %s\n",
                via_sql->EqualsBag(*via_arc) ? "yes" : "no");
  }
  return 0;
}
