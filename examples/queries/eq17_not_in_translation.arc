# Eq. (17) — the faithful ARC translation of SQL's NOT IN, with explicit
# IS NULL disjuncts inside the negated scope. Because the null handling is
# spelled out, the query means the same thing under every convention and
# ArcLint reports no null-logic warning — contrast with not_in_null_trap.arc.
{Q(a) |
  exists r in R [
    Q.a = r.a and
    not(exists s in S [s.b = r.a or s.b is null or r.a is null])]}
