# §2.9 — recursion: transitive closure of an edge relation. The definition
# references itself in a positive, ungrouped scope, so the fixpoint is
# monotone and ArcLint stays quiet about ARC-W105.
define {T(s, t) |
  exists e in E [T.s = e.s and T.t = e.t] or
  exists e in E, t2 in T [T.s = e.s and e.t = t2.s and T.t = t2.t]}
{Q(s, t) | exists t2 in T [Q.s = t2.s and Q.t = t2.t]}
