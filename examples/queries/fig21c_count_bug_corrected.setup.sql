create table R (id int, q int);
create table S (id int, d int);
insert into R values (9, 0);
