# Fig. 21a — the original nested-subquery form of the count-bug query.
# A correlated scalar aggregate (gamma() inside the condition) is the shape
# SQL's COUNT-bug decorrelation gets wrong; ArcLint flags it with ARC-W101.
{Q(id) |
  exists r in R [
    Q.id = r.id and
    exists s in S, gamma() [r.id = s.id and r.q = count(s.d)]]}
