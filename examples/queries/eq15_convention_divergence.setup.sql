create table R (ak int);
create table S (a int, b int);
insert into R values (1);
