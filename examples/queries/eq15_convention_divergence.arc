# Eq. (15) — the convention-divergence query: Souffle derives Q(1, 0) on
# R = {(1,2)}, S = {} while SQL returns (1, NULL), because sum over an empty
# group is NULL under SQL conventions and the neutral element 0 under
# Datalog conventions. ArcLint: ARC-W104 (empty-aggregate sensitivity).
{Q(ak, sm) |
  exists r in R,
         x in {X(sm) | exists s in S, gamma() [s.a < r.ak and X.sm = sum(s.b)]}
    [Q.ak = r.ak and Q.sm = x.sm]}
