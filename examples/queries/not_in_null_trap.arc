# §2.10 — the NOT-IN null trap, written as a direct negated comparison.
# Under three-valued logic a NULL operand makes `s.b = r.a` unknown, and
# NOT(unknown) is still unknown, so the row is dropped; two-valued logic
# keeps it. ArcLint: ARC-W102 (null-logic sensitivity under negation).
{Q(a) |
  exists r in R, s in S [Q.a = r.a and not(s.b = r.a)]}
