# Fig. 21c — the corrected decorrelation: re-join against R inside the
# subquery under a LEFT outer-join annotation so empty groups survive with
# count 0. No count-bug diagnostics fire on this form.
{Q(id) |
  exists r in R,
         x in {X(id, ct) |
                 exists s in S, r2 in R, gamma(r2.id), left(r2, s)
                   [X.id = r2.id and X.ct = count(s.d) and r2.id = s.id]}
    [Q.id = r.id and r.id = x.id and r.q = x.ct]}
