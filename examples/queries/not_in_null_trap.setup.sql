create table R (a int);
create table S (b int);
insert into R values (1), (2);
insert into S values (2), (null);
