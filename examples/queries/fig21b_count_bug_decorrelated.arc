# Fig. 21b — the naively decorrelated (buggy) form of the count-bug query.
# The grouped subquery drops ids with no S partners, so the outer equi-join
# silently loses rows where the count should be 0. ArcLint: ARC-W109.
{Q(id) |
  exists r in R,
         x in {X(id, ct) |
                 exists s in S, gamma(s.id)
                   [X.id = s.id and X.ct = count(s.d)]}
    [Q.id = r.id and r.id = x.id and r.q = x.ct]}
