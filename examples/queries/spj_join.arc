# A plain select-project-join query: monotone, convention-insensitive, and
# free of trap shapes. ArcLint reports nothing on it; the corpus test pins
# that down so new passes cannot regress into false positives.
{Q(a, d) |
  exists r in R, s in S [r.a = s.b and Q.a = r.a and Q.d = s.b]}
