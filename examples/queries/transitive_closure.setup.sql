create table E (s int, t int);
insert into E values (1, 2), (2, 3);
