// Quickstart: the full ARC pipeline on one query.
//
//   SQL text ──parse──► SQL AST ──SqlToArc──► ALT (the abstract core)
//       ▲                                       │
//       └────────────ArcToSql◄──────────────────┤
//                                               ├─► comprehension text
//                                               ├─► ALT tree (machine)
//                                               ├─► higraph (human)
//                                               └─► evaluate under
//                                                   different conventions
#include <cstdio>
#include <string>

#include "data/database.h"
#include "eval/evaluator.h"
#include "higraph/higraph.h"
#include "sql/eval.h"
#include "text/printer.h"
#include "translate/arc_to_sql.h"
#include "translate/sql_to_arc.h"

int main() {
  // 1. A small database, loaded through the SQL substrate.
  auto db = arc::sql::ExecuteSetupScript(
      "create table R (A int, B int);"
      "insert into R values (1, 10), (1, 20), (2, 5), (2, 5);"
      "create table S (B int, C int);"
      "insert into S values (10, 0), (20, 3), (5, 0);");
  if (!db.ok()) {
    std::printf("setup failed: %s\n", db.status().ToString().c_str());
    return 1;
  }

  // 2. A SQL query (Fig. 4a shape: grouped aggregate).
  const std::string sql =
      "select R.A, sum(R.B) sm from R, S "
      "where R.B = S.B and S.C = 0 group by R.A";
  std::printf("SQL:\n  %s\n\n", sql.c_str());

  // 3. Translate to ARC: the relational core, freed from surface syntax.
  arc::translate::SqlToArcOptions topts;
  topts.database = &*db;
  auto program = arc::translate::SqlToArc(sql, topts);
  if (!program.ok()) {
    std::printf("translation failed: %s\n",
                program.status().ToString().c_str());
    return 1;
  }

  // 4. Three modalities of the same ALT (§2.2).
  std::printf("ARC comprehension modality:\n  %s\n\n",
              arc::text::PrintProgram(*program).c_str());
  arc::text::PrintOptions unicode;
  unicode.unicode = true;
  std::printf("…in the paper's Unicode notation:\n  %s\n\n",
              arc::text::PrintProgram(*program, unicode).c_str());
  std::printf("ALT modality (machine-facing):\n%s\n",
              arc::text::PrintAltProgram(*program).c_str());
  auto hg = arc::higraph::Build(*program);
  if (hg.ok()) {
    std::printf("higraph modality (human-facing, ASCII rendering):\n%s\n",
                arc::higraph::ToAscii(*hg).c_str());
  }

  // 5. Validate (the checks an NL2SQL pipeline would run, §4).
  arc::AnalyzeOptions aopts;
  aopts.database = &*db;
  arc::Analysis analysis = arc::Analyze(*program, aopts);
  std::printf("validation: %s\n\n",
              analysis.ok() ? "ok (well-scoped, grouping legal, clean head)"
                            : analysis.DiagnosticsToString().c_str());

  // 6. Evaluate under two conventions (§2.6/§2.7) — same core, different
  //    environment-level choices.
  for (const auto& [name, conv] :
       {std::pair<const char*, arc::Conventions>{"SQL (bag, 3VL)",
                                                 arc::Conventions::Sql()},
        std::pair<const char*, arc::Conventions>{"ARC (set, 3VL)",
                                                 arc::Conventions::Arc()}}) {
    arc::eval::EvalOptions eopts;
    eopts.conventions = conv;
    auto result = arc::eval::Eval(*db, *program, eopts);
    if (!result.ok()) {
      std::printf("evaluation failed: %s\n",
                  result.status().ToString().c_str());
      return 1;
    }
    std::printf("result under %s conventions:\n%s\n", name,
                result->Sorted().ToString().c_str());
  }

  // 7. Round-trip: render the ALT back to SQL and re-run it.
  auto rendered = arc::translate::ArcToSqlText(*program);
  if (rendered.ok()) {
    std::printf("rendered back to SQL:\n  %s\n", rendered->c_str());
    arc::sql::SqlEvaluator direct(*db);
    auto again = direct.EvalQuery(*rendered);
    if (again.ok()) {
      std::printf("…executes to the same result: %s\n",
                  again->EqualsBag(*arc::eval::Eval(
                      *db, *program,
                      [] {
                        arc::eval::EvalOptions o;
                        o.conventions = arc::Conventions::Sql();
                        return o;
                      }()))
                      ? "yes"
                      : "no");
    }
  }
  return 0;
}
