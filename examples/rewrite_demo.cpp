// Pattern rewriting with convention-aware legality (§2.7, §3.2): the
// library can transform relational patterns and *knows when it may not*.
//
//  1. Existential unnesting: legal under set semantics, refused under bag
//     semantics — and we show the bag-divergence the refusal prevents.
//  2. Correlated-aggregation decorrelation: Eq. (27) → Eq. (29), the
//     count-bug-safe rewrite, verified on the paper's instance.
#include <cstdio>

#include "data/generators.h"
#include "eval/evaluator.h"
#include "rewrite/rewriter.h"
#include "text/parser.h"
#include "text/printer.h"

int main() {
  // ---- 1. set-only unnesting (§2.7) ------------------------------------
  std::printf("—— existential unnesting is a set-only rewrite (§2.7) ——\n");
  const char* nested =
      "{Q(A) | exists r in R [exists s in S [Q.A = r.A and r.B = s.B]]}";
  auto program = arc::text::ParseProgram(nested);
  if (!program.ok()) return 1;
  std::printf("nested:   %s\n", nested);

  auto refused =
      arc::rewrite::UnnestExistentialScopes(*program, arc::Conventions::Sql());
  std::printf("under bag conventions: %s\n",
              refused.ok() ? "(unexpectedly allowed)"
                           : refused.status().message().c_str());

  auto unnested =
      arc::rewrite::UnnestExistentialScopes(*program, arc::Conventions::Arc());
  if (!unnested.ok()) return 1;
  std::printf("under set conventions: unnested (%d site) → %s\n",
              unnested->applications,
              arc::text::PrintProgram(unnested->program).c_str());

  // Demonstrate the divergence the refusal prevents: S has duplicate
  // B-values.
  arc::data::Database db;
  arc::data::Relation r(arc::data::Schema{"A", "B"});
  r.Add({arc::data::Value::Int(1), arc::data::Value::Int(5)});
  db.Put("R", std::move(r));
  arc::data::Relation s(arc::data::Schema{"B"});
  for (int i = 0; i < 3; ++i) s.Add({arc::data::Value::Int(5)});
  db.Put("S", std::move(s));
  arc::eval::EvalOptions bag;
  bag.conventions = arc::Conventions::Sql();
  auto nested_bag = arc::eval::Eval(db, *program, bag);
  auto unnested_bag = arc::eval::Eval(db, unnested->program, bag);
  if (nested_bag.ok() && unnested_bag.ok()) {
    std::printf(
        "bag multiplicities: nested = %lld row(s) (semijoin-like), "
        "unnested = %lld row(s) (per pair) — hence the refusal\n\n",
        static_cast<long long>(nested_bag->size()),
        static_cast<long long>(unnested_bag->size()));
  }

  // ---- 2. count-bug-safe decorrelation (§3.2) ---------------------------
  std::printf("—— decorrelation without the count bug (§3.2) ——\n");
  const char* correlated =
      "{Q(id) | exists r in R [Q.id = r.id and exists s in S, gamma() "
      "[r.id = s.id and r.q = count(s.d)]]}";
  auto original = arc::text::ParseProgram(correlated);
  if (!original.ok()) return 1;
  std::printf("correlated (Eq. 27):\n  %s\n", correlated);
  arc::rewrite::RewriteResult rewritten =
      arc::rewrite::DecorrelateAggregation(*original);
  std::printf("decorrelated (Eq. 29 shape, %d site):\n  %s\n",
              rewritten.applications,
              arc::text::PrintProgram(rewritten.program).c_str());

  arc::data::Database paper = arc::data::CountBugInstance();
  auto before = arc::eval::Eval(paper, *original, bag);
  auto after = arc::eval::Eval(paper, rewritten.program, bag);
  if (before.ok() && after.ok()) {
    std::printf(
        "paper instance R(9,0), S=∅: original %lld row(s), decorrelated "
        "%lld row(s) — %s\n",
        static_cast<long long>(before->size()),
        static_cast<long long>(after->size()),
        before->EqualsBag(*after) ? "the empty group survives (no count bug)"
                                  : "DIVERGED");
  }
  return 0;
}
