#!/usr/bin/env python3
"""Diff two BENCH_eval.json aggregates (bench/run_benchmarks.sh output).

    scripts/compare_bench.py BASELINE.json CANDIDATE.json [--threshold PCT]

Prints a per-benchmark cpu_time delta table (negative = candidate faster)
and exits non-zero if any benchmark present in both files regressed by
more than --threshold percent (default 10). Benchmarks that appear in only
one file are reported as warnings on stderr but do not fail the gate —
figure sets are allowed to grow and shrink across PRs. Pass --strict to
restore the hard gate: any added or removed benchmark then fails the
comparison, for release branches where the figure set is frozen. Refuses
to compare aggregates whose library_build_type differ (debug-vs-release
"regressions" are noise, not signal).
"""
import argparse
import json
import sys


def load(path):
    with open(path) as f:
        data = json.load(f)
    flat = {}
    for figure, entries in data.get("figures", {}).items():
        for e in entries:
            if e.get("cpu_time_ns") is None:
                continue  # aggregate rows (BigO, RMS) carry no cpu_time
            flat[f"{figure}/{e['name']}"] = e["cpu_time_ns"]
    return data, flat


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument("--threshold", type=float, default=10.0,
                    help="regression gate in percent (default 10)")
    ap.add_argument("--strict", action="store_true",
                    help="fail when a benchmark exists in only one aggregate "
                         "(default: warn on stderr)")
    args = ap.parse_args()

    base_meta, base = load(args.baseline)
    cand_meta, cand = load(args.candidate)

    bt_base = base_meta.get("library_build_type")
    bt_cand = cand_meta.get("library_build_type")
    if bt_base != bt_cand:
        print(f"error: build types differ ({bt_base} vs {bt_cand}); "
              "re-capture both with bench/run_benchmarks.sh", file=sys.stderr)
        return 2

    shared = sorted(set(base) & set(cand))
    if not shared:
        print("error: no benchmarks in common", file=sys.stderr)
        return 2

    width = max(len(n) for n in shared)
    print(f"{'benchmark':<{width}}  {'baseline':>12}  {'candidate':>12}  "
          f"{'delta':>8}")
    regressions = []
    for name in shared:
        b, c = base[name], cand[name]
        delta = 100.0 * (c - b) / b if b else float("inf")
        flag = ""
        if delta > args.threshold:
            regressions.append((name, delta))
            flag = "  REGRESSED"
        print(f"{name:<{width}}  {b:>12.0f}  {c:>12.0f}  {delta:>+7.1f}%{flag}")

    removed = sorted(set(base) - set(cand))
    added = sorted(set(cand) - set(base))
    for name in removed:
        print(f"warning: {name} present only in baseline (removed?)",
              file=sys.stderr)
    for name in added:
        print(f"warning: {name} present only in candidate (added?)",
              file=sys.stderr)

    if args.strict and (removed or added):
        print(f"\nstrict mode: benchmark sets differ "
              f"({len(removed)} removed, {len(added)} added)", file=sys.stderr)
        return 1

    if regressions:
        print(f"\n{len(regressions)} benchmark(s) regressed by more than "
              f"{args.threshold:.0f}% cpu_time:", file=sys.stderr)
        for name, delta in regressions:
            print(f"  {name}: {delta:+.1f}%", file=sys.stderr)
        return 1
    print(f"\nno cpu_time regression beyond {args.threshold:.0f}% "
          f"across {len(shared)} shared benchmarks")
    return 0


if __name__ == "__main__":
    sys.exit(main())
