#!/usr/bin/env bash
# One-shot pre-PR gate: build + run the full test suite twice —
#   1. a plain Release build (what CI and users run), and
#   2. an ASan/UBSan build (ARC_SANITIZE=address,undefined) that catches
#      memory errors and UB the plain build silently tolerates.
#
# Between the two suites a fast ArcVerify smoke tier runs `arctool verify`
# at a small bound (default k=2; override with ARC_VERIFY_BOUND=3 for the
# deep tier) — refutations print their minimal counterexample database.
#
# Usage:   scripts/check.sh [build-dir-prefix]
# The two build trees land in <prefix> and <prefix>-asan (default:
# build-check). Exits non-zero on the first configure/build/test failure.
set -euo pipefail

cd "$(dirname "$0")/.."
prefix="${1:-build-check}"
jobs="$(nproc 2>/dev/null || echo 4)"

run_suite() {
  local dir="$1"
  shift
  cmake -S . -B "$dir" -DCMAKE_BUILD_TYPE=Release "$@" >/dev/null
  cmake --build "$dir" -j "$jobs"
  ctest --test-dir "$dir" --output-on-failure -j "$jobs"
}

echo "== plain build =="
run_suite "$prefix"

bound="${ARC_VERIFY_BOUND:-2}"
arctool="$prefix/tools/arctool"
echo "== ArcVerify smoke tier (bound=$bound) =="
# Scope flattening is meaning-preserving under ARC (set) conventions.
"$arctool" verify \
    --arc "{Q(A) | exists r in R [exists s in S [Q.A = r.A and r.B = s.B]]}" \
    --arc2 "{Q(A) | exists r in R, s in S [Q.A = r.A and r.B = s.B]}" \
    --conventions arc --bound "$bound"
# The naive Fig. 21b decorrelation MUST be refuted; the minimal
# counterexample database prints below (this is the count bug).
if "$arctool" verify \
    --arc @examples/queries/fig21a_count_bug_original.arc \
    --arc2 @examples/queries/fig21b_count_bug_decorrelated.arc \
    --setup "$(cat examples/queries/fig21a_count_bug_original.setup.sql)" \
    --bound "$bound"; then
  echo "error: ArcVerify failed to refute the Fig. 21b count bug" >&2
  exit 1
fi
# Lint auto-fix gate: the W102 null-guard insertion verifies at this bound.
"$arctool" lint \
    --arc "{Q(A) | exists r in R, s in S [Q.A = r.A and not(s.B = r.A)]}" \
    --setup "create table R (A int); create table S (B int);" \
    --fix-dry-run --bound "$bound" \
  | grep -q "VERIFIED: equivalent under 3VL" \
  || { echo "error: W102 auto-fix failed its bounded gate" >&2; exit 1; }
echo "ArcVerify smoke tier passed."

echo "== sanitizer build (address,undefined) =="
run_suite "$prefix-asan" -DARC_SANITIZE=address,undefined

echo "All checks passed."
echo "Optional perf gate: bench/run_benchmarks.sh, then"
echo "  scripts/compare_bench.py <old BENCH_eval.json> BENCH_eval.json"
echo "fails on any >10% cpu_time regression against a committed baseline."
