#!/usr/bin/env bash
# One-shot pre-PR gate: build + run the full test suite twice —
#   1. a plain Release build (what CI and users run), and
#   2. an ASan/UBSan build (ARC_SANITIZE=address,undefined) that catches
#      memory errors and UB the plain build silently tolerates.
#
# Usage:   scripts/check.sh [build-dir-prefix]
# The two build trees land in <prefix> and <prefix>-asan (default:
# build-check). Exits non-zero on the first configure/build/test failure.
set -euo pipefail

cd "$(dirname "$0")/.."
prefix="${1:-build-check}"
jobs="$(nproc 2>/dev/null || echo 4)"

run_suite() {
  local dir="$1"
  shift
  cmake -S . -B "$dir" -DCMAKE_BUILD_TYPE=Release "$@" >/dev/null
  cmake --build "$dir" -j "$jobs"
  ctest --test-dir "$dir" --output-on-failure -j "$jobs"
}

echo "== plain build =="
run_suite "$prefix"

echo "== sanitizer build (address,undefined) =="
run_suite "$prefix-asan" -DARC_SANITIZE=address,undefined

echo "All checks passed."
echo "Optional perf gate: bench/run_benchmarks.sh, then"
echo "  scripts/compare_bench.py <old BENCH_eval.json> BENCH_eval.json"
echo "fails on any >10% cpu_time regression against a committed baseline."
